// Causal trace analysis: per-transaction critical paths, aggregate edge
// attribution, and speculation-lineage graphs.
//
// The critical path of a committed transaction is the longest causal chain
// from TxBegin to TxCommit, reconstructed from the tracer's event stream by
// a cursor walk: each event that completes later than the cursor contributes
// an edge [cursor, t] attributed to what the transaction was waiting on
// (local compute, a local or WAN read, the speculation gate, local
// certification, the WAN prepare fan-in, the SPSI-4 dependency wait, or the
// final commit application). Edges are consecutive by construction, so for
// every committed transaction they partition [begin, commit] exactly — in
// virtual microseconds, with no rounding slack. check_critical_paths()
// verifies that invariant and is wired into CI.
//
// The lineage graph records who observed whose speculative versions
// (ReadReady.other) and how aborts cascade (TxAbort.other names the cascade
// parent), attributing every CascadingAbort to the root-cause transaction
// whose own abort started the tree.
//
// Everything here is tool/test-side: the simulation hot path never calls it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace str::obs {

/// What a committed transaction was waiting on during one critical-path edge.
enum class EdgeClass : std::uint8_t {
  LocalCompute,  ///< client think time / coordinator-local work
  ReadLocal,     ///< read served by a replica on the origin node
  ReadWan,       ///< read served over the network
  GateStall,     ///< value held at the speculation gate (Alg. 1 l. 15)
  LocalCert,     ///< synchronous local certification (local 2PC)
  PrepareWan,    ///< global-certification prepare/replicate fan-in
  DepWait,       ///< SPSI-4 wait for data dependencies
  Finalize,      ///< last ack / dependency -> final commit application
};
inline constexpr std::size_t kNumEdgeClasses = 8;

const char* to_string(EdgeClass c);

struct CriticalEdge {
  EdgeClass cls = EdgeClass::LocalCompute;
  Timestamp from = 0;
  Timestamp to = 0;
  std::uint64_t detail = 0;  ///< key (reads/gate) or 0

  Timestamp duration() const { return to - from; }
  friend bool operator==(const CriticalEdge&, const CriticalEdge&) = default;
};

struct CriticalPath {
  TxId tx;
  Timestamp begin = 0;
  Timestamp commit = 0;
  std::vector<CriticalEdge> edges;  ///< consecutive, cover [begin, commit]
};

/// Critical paths of every committed transaction whose TxBegin is in
/// `events` (transactions whose begin fell off the ring, e.g. across the
/// warmup cutover, are skipped — a partial path cannot cover the interval).
/// `events` must be in emission (chronological) order, as snapshot() returns.
std::vector<CriticalPath> critical_paths(const std::vector<TraceEvent>& events);

/// Exact-coverage check: for each path, edges are consecutive with positive
/// width, start at begin, end at commit, and their durations sum to
/// commit - begin. Returns one message per violation (empty = all good).
std::vector<std::string> check_critical_paths(
    const std::vector<CriticalPath>& paths);

struct EdgeClassStats {
  std::uint64_t count = 0;     ///< edges of this class
  std::uint64_t txns = 0;      ///< committed txns with >= 1 such edge
  Timestamp total_us = 0;      ///< summed duration
  double mean_us = 0.0;        ///< per edge
  Timestamp p50_us = 0;
  Timestamp p99_us = 0;
  Timestamp max_us = 0;
};

struct PathAggregate {
  std::uint64_t committed = 0;
  Timestamp total_latency_us = 0;  ///< summed commit - begin
  Timestamp latency_p50_us = 0;
  Timestamp latency_p99_us = 0;
  std::array<EdgeClassStats, kNumEdgeClasses> per_class;
};

/// Exact (sorted, nearest-rank) aggregation over the given paths.
PathAggregate aggregate(const std::vector<CriticalPath>& paths);

/// One cascade-abort tree, attributed to its root cause.
struct CascadeTree {
  TxId root;                  ///< the transaction whose abort started it
  AbortReason root_reason = AbortReason::None;  ///< why the root aborted
  std::uint64_t size = 0;     ///< cascading aborts in the tree (root excluded)
  std::uint64_t max_depth = 0;  ///< longest root->leaf chain
};

struct LineageStats {
  std::uint64_t spec_reads = 0;    ///< speculative ReadReady observations
  std::uint64_t spec_edges = 0;    ///< distinct writer -> reader pairs
  std::uint64_t spec_writers = 0;  ///< distinct writers observed speculatively
  std::uint64_t max_fanout = 0;    ///< most readers of one writer
  double mean_fanout = 0.0;        ///< spec_edges / spec_writers
  std::uint64_t aborts = 0;             ///< all aborts seen
  std::uint64_t cascading_aborts = 0;   ///< reason == CascadingAbort
  std::uint64_t unattributed = 0;  ///< cascades whose root fell off the ring
  std::vector<std::uint64_t> depth_histogram;  ///< [d] = cascades at depth d+1
  Timestamp aborted_work_us = 0;  ///< summed begin->abort virtual time
  std::vector<CascadeTree> trees;  ///< sorted by root TxId
};

LineageStats lineage(const std::vector<TraceEvent>& events);

/// A Chrome trace re-parsed into structured records (inverse of
/// chrome_trace_json for files we wrote ourselves).
struct ParsedTrace {
  std::vector<TraceEvent> events;
  std::vector<SpanRecord> spans;
  struct Flow {
    std::uint64_t id = 0;  ///< child span id
    NodeId src_node = kInvalidNode;
    Timestamp src_ts = 0;
    NodeId dst_node = kInvalidNode;
    Timestamp dst_ts = 0;
    bool has_src = false;
    bool has_dst = false;
  };
  std::vector<Flow> flows;  ///< s/f pairs merged by flow id
  std::uint32_t num_nodes = 0;
  std::uint64_t dropped_events = 0;
  std::uint64_t dropped_spans = 0;
};

/// Parse a chrome_trace_json() document back into events/spans/flows.
/// Returns false (with `error` set) on malformed input or unknown schema.
bool parse_chrome_trace(const std::string& json_text, ParsedTrace& out,
                        std::string& error);

}  // namespace str::obs
