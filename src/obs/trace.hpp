// Transaction-lifecycle tracer.
//
// Records structured events (begin, read issued/ready, gate parked/released,
// local certification, per-DC prepare traffic, dependency waits, final
// commit/abort) stamped with virtual time and node id. The cluster owns one
// tracer; events land in a bounded ring buffer so long runs cannot exhaust
// memory — when full, the oldest events are overwritten and counted as
// dropped.
//
// Cost model: the tracer is disabled by default. Call sites guard argument
// evaluation with `if (tracer.enabled())`, so the disabled path is a single
// predictable branch on a bool — benchmarks pay nothing measurable.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace str::obs {

enum class TraceEventType : std::uint8_t {
  TxBegin,        ///< startTx; a = read snapshot RS
  ReadIssued,     ///< read requested; a = key, b = 1 when remote
  ReadReady,      ///< value delivered to the transaction; a = key,
                  ///< b = 1 when the observed version was speculative
  GateParked,     ///< value held at the speculation gate (Alg. 1 l. 15); a = key
  GateReleased,   ///< gate opened, parked value delivered; a = key,
                  ///< b = park duration (virtual us)
  LocalCertStart, ///< local certification began; a = write-set size
  LocalCertEnd,   ///< local certification passed; a = local-commit ts LC
  PrepareSent,    ///< prepare/replicate sent; a = destination node, b = partition
  PrepareAck,     ///< prepare/replicate ack received; a = replying node,
                  ///< b = 1 when the ack refused (certification conflict)
  DepWait,        ///< commit blocked on unresolved data dependencies (SPSI-4);
                  ///< a = number of unresolved dependencies
  DepResolved,    ///< one dependency resolved; a = remaining count
  TxCommit,       ///< final commit; a = commit ts FC, b = FC - RS distance
  TxAbort,        ///< final abort; a = AbortReason,
                  ///< other = cascade parent when reason is CascadingAbort
  CommitRequested,///< client called commit; a = write-set size
};

const char* to_string(TraceEventType t);
bool trace_event_type_from_string(const std::string& s, TraceEventType& out);

struct TraceEvent {
  Timestamp at = 0;  ///< virtual time
  TxId tx;
  NodeId node = kInvalidNode;  ///< node whose handler emitted the event
  TraceEventType type = TraceEventType::TxBegin;
  std::uint64_t a = 0;  ///< type-specific (see enum comments)
  std::uint64_t b = 0;
  TxId other = kNoTx;  ///< causally related transaction: the speculative
                       ///< writer on ReadReady, the cascade parent on TxAbort

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Causal span kinds, one per leg of the transaction lifecycle. A span is a
/// closed virtual-time interval on one node; `parent` links it into a DAG
/// per transaction. Cross-node edges (Handle spans whose parent lives on the
/// sending node) are stitched via the trace context carried on protocol
/// messages — see docs/OBSERVABILITY.md.
enum class SpanKind : std::uint8_t {
  Txn,        ///< whole attempt, begin -> final outcome; a = committed (0/1),
              ///< b = AbortReason (commit: commit ts FC)
  Read,       ///< read issued -> value delivered; a = key, b = speculative
  GateStall,  ///< value parked at the speculation gate; a = key
  LocalCert,  ///< commit requested -> local certification done; a = write set
  PrepareLeg, ///< prepare/replicate sent -> ack received, one per
              ///< (partition, node); a = partition, b = replying node
  DepWait,    ///< all acks in -> last data dependency resolved; a = deps
  Handle,     ///< server-side handling of one message; a = wire message tag,
              ///< b = partition (or key for reads)
  Probe,      ///< orphan-recovery DecisionRequest probe; a = wire message
              ///< tag, b = partition
};

const char* to_string(SpanKind k);
bool span_kind_from_string(const std::string& s, SpanKind& out);

struct SpanRecord {
  std::uint64_t id = 0;      ///< nonzero, unique within a run
  std::uint64_t parent = 0;  ///< 0 = root
  TxId tx;
  NodeId node = kInvalidNode;
  SpanKind kind = SpanKind::Txn;
  Timestamp start = 0;
  Timestamp end = 0;
  std::uint64_t a = 0;  ///< kind-specific (see enum comments)
  std::uint64_t b = 0;

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Resize both rings. Existing entries are kept (newest first) up to the
  /// new capacity.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  void emit(TraceEvent ev);

  std::uint64_t emitted() const { return emitted_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const {
    return emitted_ <= ring_.size() ? 0 : emitted_ - ring_.size();
  }
  std::size_t size() const { return ring_.size(); }

  /// Retained events in emission (= chronological) order.
  std::vector<TraceEvent> snapshot() const;

  /// Allocate a span id. Deterministic (monotonic counter, no RNG), so
  /// traced runs replay byte-identically across transports. Call only when
  /// tracing a span; ids are never reused within a run. (Region-sharded
  /// runs allocate from worker threads; ids stay unique but their
  /// assignment order — like ring order — follows wall-clock interleaving.)
  std::uint64_t next_span_id() {
    std::lock_guard<std::mutex> lk(mu_);
    return next_span_++;
  }

  /// Record a completed span. Spans land in their own ring (same capacity
  /// as the event ring) ordered by emission = completion time.
  void emit_span(SpanRecord span);

  std::uint64_t spans_emitted() const { return spans_emitted_; }
  std::uint64_t spans_dropped() const {
    return spans_emitted_ <= span_ring_.size()
               ? 0
               : spans_emitted_ - span_ring_.size();
  }
  std::size_t span_count() const { return span_ring_.size(); }

  /// Retained spans in emission (= completion) order.
  std::vector<SpanRecord> span_snapshot() const;

  void clear();

 private:
  /// Guards the rings and counters: region-sharded runs emit from worker
  /// threads. The rings then hold an interleaving-dependent order — tools
  /// that need determinism sort snapshots by (at, tx) themselves.
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  ///< grows to capacity_, then wraps
  std::size_t head_ = 0;          ///< next write slot once ring_ is full
  std::uint64_t emitted_ = 0;
  std::vector<SpanRecord> span_ring_;
  std::size_t span_head_ = 0;
  std::uint64_t spans_emitted_ = 0;
  std::uint64_t next_span_ = 1;
};

}  // namespace str::obs
