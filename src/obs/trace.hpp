// Transaction-lifecycle tracer.
//
// Records structured events (begin, read issued/ready, gate parked/released,
// local certification, per-DC prepare traffic, dependency waits, final
// commit/abort) stamped with virtual time and node id. The cluster owns one
// tracer; events land in a bounded ring buffer so long runs cannot exhaust
// memory — when full, the oldest events are overwritten and counted as
// dropped.
//
// Cost model: the tracer is disabled by default. Call sites guard argument
// evaluation with `if (tracer.enabled())`, so the disabled path is a single
// predictable branch on a bool — benchmarks pay nothing measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace str::obs {

enum class TraceEventType : std::uint8_t {
  TxBegin,        ///< startTx; a = read snapshot RS
  ReadIssued,     ///< read requested; a = key, b = 1 when remote
  ReadReady,      ///< value delivered to the transaction; a = key,
                  ///< b = 1 when the observed version was speculative
  GateParked,     ///< value held at the speculation gate (Alg. 1 l. 15); a = key
  GateReleased,   ///< gate opened, parked value delivered; a = key,
                  ///< b = park duration (virtual us)
  LocalCertStart, ///< local certification began; a = write-set size
  LocalCertEnd,   ///< local certification passed; a = local-commit ts LC
  PrepareSent,    ///< prepare/replicate sent; a = destination node, b = partition
  PrepareAck,     ///< prepare/replicate ack received; a = replying node,
                  ///< b = 1 when the ack refused (certification conflict)
  DepWait,        ///< commit blocked on unresolved data dependencies (SPSI-4);
                  ///< a = number of unresolved dependencies
  DepResolved,    ///< one dependency resolved; a = remaining count
  TxCommit,       ///< final commit; a = commit ts FC, b = FC - RS distance
  TxAbort,        ///< final abort; a = AbortReason
};

const char* to_string(TraceEventType t);

struct TraceEvent {
  Timestamp at = 0;  ///< virtual time
  TxId tx;
  NodeId node = kInvalidNode;  ///< node whose handler emitted the event
  TraceEventType type = TraceEventType::TxBegin;
  std::uint64_t a = 0;  ///< type-specific (see enum comments)
  std::uint64_t b = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Resize the ring. Existing events are kept (newest first) up to the new
  /// capacity.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  void emit(TraceEvent ev);

  std::uint64_t emitted() const { return emitted_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const {
    return emitted_ <= ring_.size() ? 0 : emitted_ - ring_.size();
  }
  std::size_t size() const { return ring_.size(); }

  /// Retained events in emission (= chronological) order.
  std::vector<TraceEvent> snapshot() const;

  void clear();

 private:
  bool enabled_ = false;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  ///< grows to capacity_, then wraps
  std::size_t head_ = 0;          ///< next write slot once ring_ is full
  std::uint64_t emitted_ = 0;
};

}  // namespace str::obs
