#include "obs/trace.hpp"

#include "common/assert.hpp"

namespace str::obs {

const char* to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::TxBegin: return "tx_begin";
    case TraceEventType::ReadIssued: return "read_issued";
    case TraceEventType::ReadReady: return "read_ready";
    case TraceEventType::GateParked: return "gate_parked";
    case TraceEventType::GateReleased: return "gate_released";
    case TraceEventType::LocalCertStart: return "local_cert_start";
    case TraceEventType::LocalCertEnd: return "local_cert_end";
    case TraceEventType::PrepareSent: return "prepare_sent";
    case TraceEventType::PrepareAck: return "prepare_ack";
    case TraceEventType::DepWait: return "dep_wait";
    case TraceEventType::DepResolved: return "dep_resolved";
    case TraceEventType::TxCommit: return "tx_commit";
    case TraceEventType::TxAbort: return "tx_abort";
    case TraceEventType::CommitRequested: return "commit_requested";
  }
  return "?";
}

bool trace_event_type_from_string(const std::string& s, TraceEventType& out) {
  for (std::uint8_t i = 0;
       i <= static_cast<std::uint8_t>(TraceEventType::CommitRequested); ++i) {
    const auto t = static_cast<TraceEventType>(i);
    if (s == to_string(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::Txn: return "txn";
    case SpanKind::Read: return "read";
    case SpanKind::GateStall: return "gate_stall";
    case SpanKind::LocalCert: return "local_cert";
    case SpanKind::PrepareLeg: return "prepare_leg";
    case SpanKind::DepWait: return "dep_wait_span";
    case SpanKind::Handle: return "handle";
    case SpanKind::Probe: return "probe";
  }
  return "?";
}

bool span_kind_from_string(const std::string& s, SpanKind& out) {
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(SpanKind::Probe);
       ++i) {
    const auto k = static_cast<SpanKind>(i);
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  STR_ASSERT(capacity_ > 0);
}

void Tracer::set_capacity(std::size_t capacity) {
  STR_ASSERT(capacity > 0);
  std::vector<TraceEvent> kept = snapshot();
  if (kept.size() > capacity) {
    kept.erase(kept.begin(),
               kept.begin() + static_cast<std::ptrdiff_t>(kept.size() - capacity));
  }
  std::vector<SpanRecord> kept_spans = span_snapshot();
  if (kept_spans.size() > capacity) {
    kept_spans.erase(kept_spans.begin(),
                     kept_spans.begin() + static_cast<std::ptrdiff_t>(
                                              kept_spans.size() - capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(kept);
  span_ring_ = std::move(kept_spans);
  // The rebuilt rings are chronological (oldest at index 0), so the next
  // overwrite slot is index 0 whether or not they are already full.
  head_ = 0;
  span_head_ = 0;
}

void Tracer::emit(TraceEvent ev) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lk(mu_);
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    return;
  }
  ring_[head_] = ev;
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void Tracer::emit_span(SpanRecord span) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lk(mu_);
  ++spans_emitted_;
  if (span_ring_.size() < capacity_) {
    span_ring_.push_back(span);
    return;
  }
  span_ring_[span_head_] = span;
  span_head_ = span_head_ + 1 == capacity_ ? 0 : span_head_ + 1;
}

std::vector<SpanRecord> Tracer::span_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SpanRecord> out;
  out.reserve(span_ring_.size());
  if (span_ring_.size() < capacity_) {
    out = span_ring_;
    return out;
  }
  out.insert(out.end(),
             span_ring_.begin() + static_cast<std::ptrdiff_t>(span_head_),
             span_ring_.end());
  out.insert(out.end(), span_ring_.begin(),
             span_ring_.begin() + static_cast<std::ptrdiff_t>(span_head_));
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
  head_ = 0;
  emitted_ = 0;
  span_ring_.clear();
  span_head_ = 0;
  spans_emitted_ = 0;
  next_span_ = 1;
}

}  // namespace str::obs
