#include "obs/trace.hpp"

#include "common/assert.hpp"

namespace str::obs {

const char* to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::TxBegin: return "tx_begin";
    case TraceEventType::ReadIssued: return "read_issued";
    case TraceEventType::ReadReady: return "read_ready";
    case TraceEventType::GateParked: return "gate_parked";
    case TraceEventType::GateReleased: return "gate_released";
    case TraceEventType::LocalCertStart: return "local_cert_start";
    case TraceEventType::LocalCertEnd: return "local_cert_end";
    case TraceEventType::PrepareSent: return "prepare_sent";
    case TraceEventType::PrepareAck: return "prepare_ack";
    case TraceEventType::DepWait: return "dep_wait";
    case TraceEventType::DepResolved: return "dep_resolved";
    case TraceEventType::TxCommit: return "tx_commit";
    case TraceEventType::TxAbort: return "tx_abort";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  STR_ASSERT(capacity_ > 0);
}

void Tracer::set_capacity(std::size_t capacity) {
  STR_ASSERT(capacity > 0);
  std::vector<TraceEvent> kept = snapshot();
  if (kept.size() > capacity) {
    kept.erase(kept.begin(),
               kept.begin() + static_cast<std::ptrdiff_t>(kept.size() - capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(kept);
  // The rebuilt ring is chronological (oldest at index 0), so the next
  // overwrite slot is index 0 whether or not it is already full.
  head_ = 0;
}

void Tracer::emit(TraceEvent ev) {
  if (!enabled_) return;
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    return;
  }
  ring_[head_] = ev;
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  emitted_ = 0;
}

}  // namespace str::obs
