// Exporters for the observability layer.
//
//  * chrome_trace_json: Chrome trace-event format (the JSON Array Format
//    wrapped in {"traceEvents": ...}), loadable in Perfetto or
//    chrome://tracing. One track (tid) per node; each transaction is an
//    async ("b"/"e") span on its origin node's track, with its lifecycle
//    events attached as nestable instants ("n") sharing the span id.
//    Causal spans are complete ("X") slices carrying span/parent ids, with
//    flow events ("s"/"f") drawing cross-node parent->child arrows.
//  * metrics_json / metrics_csv: dump of a (typically cluster-merged)
//    registry; timers report count/mean/p50/p95/p99/max in virtual us.
//
// All output is built from integers and fixed-precision decimals in
// name-sorted or emission order, so identical runs produce byte-identical
// files (the determinism tests rely on this).
#pragma once

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace str::obs {

/// Serialize the tracer's retained events. `num_nodes` sizes the per-node
/// track metadata (pass the cluster size; nodes without events still get a
/// named track).
std::string chrome_trace_json(const Tracer& tracer, std::uint32_t num_nodes);

/// Registry dump plus optional extra key/value pairs (experiment-level
/// aggregates) under an "experiment" object. Values in `extra` are emitted
/// verbatim, so pass pre-formatted numbers.
std::string metrics_json(
    const Registry& registry,
    const std::vector<std::pair<std::string, std::string>>& extra = {});

/// Flat CSV: kind,name,count,value,mean_us,p50_us,p95_us,p99_us,max_us.
std::string metrics_csv(const Registry& registry);

/// Write `content` to `path` ("-" = stdout); returns false (and logs) on
/// failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace str::obs
