#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace str::obs::json {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string& error;

  bool fail(const char* what) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s at byte %zu", what, pos);
    error = buf;
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos) {
      if (pos >= text.size() || text[pos] != *p) return false;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // Our exporters never emit \u escapes; decode as a raw code
            // unit truncated to one byte so round-trips stay lossless for
            // ASCII.
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            char hex[5] = {text[pos], text[pos + 1], text[pos + 2],
                           text[pos + 3], '\0'};
            pos += 4;
            out.push_back(static_cast<char>(std::strtoul(hex, nullptr, 16)));
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    bool integral = true;
    if (pos < text.size() && text[pos] == '.') {
      integral = false;
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start) return fail("expected number");
    const std::string tok = text.substr(start, pos - start);
    if (integral && tok[0] != '-') {
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out.kind = Value::Kind::Uint;
        out.uint_value = v;
        out.number = static_cast<double>(v);
        return true;
      }
    }
    out.kind = Value::Kind::Number;
    out.number = std::strtod(tok.c_str(), nullptr);
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = Value::Kind::Object;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return fail("expected ':'");
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = Value::Kind::Array;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        out.array.push_back(std::move(v));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = Value::Kind::String;
      return parse_string(out.string);
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      out.kind = Value::Kind::Bool;
      out.boolean = true;
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      out.kind = Value::Kind::Bool;
      out.boolean = false;
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      out.kind = Value::Kind::Null;
      return true;
    }
    return parse_number(out);
  }
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string& error) {
  Parser p{text, 0, error};
  if (!p.parse_value(out, 0)) return false;
  p.skip_ws();
  if (p.pos != text.size()) return p.fail("trailing garbage");
  return true;
}

}  // namespace str::obs::json
