#include "obs/analysis.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.hpp"

namespace str::obs {

const char* to_string(EdgeClass c) {
  switch (c) {
    case EdgeClass::LocalCompute: return "local_compute";
    case EdgeClass::ReadLocal: return "read_local";
    case EdgeClass::ReadWan: return "read_wan";
    case EdgeClass::GateStall: return "gate_stall";
    case EdgeClass::LocalCert: return "local_cert";
    case EdgeClass::PrepareWan: return "prepare_wan";
    case EdgeClass::DepWait: return "dep_wait";
    case EdgeClass::Finalize: return "finalize";
  }
  return "?";
}

namespace {

std::string tx_str(const TxId& tx) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%u.%" PRIu64, tx.node, tx.seq);
  return buf;
}

/// Per-transaction cursor-walk state. The cursor is the end of the last
/// critical-path edge; every event completing later than the cursor was, by
/// definition, what the transaction was waiting on during [cursor, t].
struct Walk {
  CriticalPath path;
  Timestamp cursor = 0;
  bool commit_requested = false;
  /// key -> (issue time, remote?) for outstanding reads.
  std::unordered_map<std::uint64_t, std::pair<Timestamp, bool>> issued;
  /// key -> time the delivered value parked at the speculation gate.
  std::unordered_map<std::uint64_t, Timestamp> parked;

  void edge(EdgeClass cls, Timestamp t, std::uint64_t detail) {
    if (t <= cursor) return;  // completed off the critical path
    path.edges.push_back({cls, cursor, t, detail});
    cursor = t;
  }
};

}  // namespace

std::vector<CriticalPath> critical_paths(
    const std::vector<TraceEvent>& events) {
  // Only transactions with both endpoints retained can be covered exactly.
  std::unordered_map<TxId, std::uint8_t, TxIdHash> endpoints;
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceEventType::TxBegin) endpoints[ev.tx] |= 1;
    if (ev.type == TraceEventType::TxCommit) endpoints[ev.tx] |= 2;
  }

  std::unordered_map<TxId, Walk, TxIdHash> walks;
  std::vector<CriticalPath> out;
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceEventType::TxBegin) {
      const auto e = endpoints.find(ev.tx);
      if (e == endpoints.end() || e->second != 3) continue;
      Walk& w = walks[ev.tx];
      w.path.tx = ev.tx;
      w.path.begin = ev.at;
      w.cursor = ev.at;
      continue;
    }
    const auto it = walks.find(ev.tx);
    if (it == walks.end()) continue;
    Walk& w = it->second;
    switch (ev.type) {
      case TraceEventType::ReadIssued:
        // Time since the last completion was coordinator-local work.
        w.edge(EdgeClass::LocalCompute, ev.at, 0);
        w.issued[ev.a] = {ev.at, ev.b != 0};
        break;
      case TraceEventType::GateParked:
        // The value arrived here; the rest of the wait is the gate's fault.
        w.parked[ev.a] = ev.at;
        break;
      case TraceEventType::ReadReady: {
        const auto issue = w.issued.find(ev.a);
        const bool remote = issue != w.issued.end() && issue->second.second;
        const EdgeClass read_cls =
            remote ? EdgeClass::ReadWan : EdgeClass::ReadLocal;
        const auto park = w.parked.find(ev.a);
        if (park != w.parked.end()) {
          w.edge(read_cls, park->second, ev.a);
          w.edge(EdgeClass::GateStall, ev.at, ev.a);
          w.parked.erase(park);
        } else {
          w.edge(read_cls, ev.at, ev.a);
        }
        if (issue != w.issued.end()) w.issued.erase(issue);
        break;
      }
      case TraceEventType::CommitRequested:
        w.edge(EdgeClass::LocalCompute, ev.at, 0);
        w.commit_requested = true;
        break;
      case TraceEventType::LocalCertEnd:
        w.edge(EdgeClass::LocalCert, ev.at, 0);
        break;
      case TraceEventType::PrepareAck:
        w.edge(EdgeClass::PrepareWan, ev.at, ev.a);
        break;
      case TraceEventType::DepResolved:
        // Dependencies resolving before commit() was called cost nothing;
        // afterwards they are the SPSI-4 wait.
        if (w.commit_requested) w.edge(EdgeClass::DepWait, ev.at, 0);
        break;
      case TraceEventType::TxCommit:
        w.edge(EdgeClass::Finalize, ev.at, 0);
        w.path.commit = ev.at;
        out.push_back(std::move(w.path));
        walks.erase(it);
        break;
      default:
        break;  // informational for path purposes
    }
  }
  return out;
}

std::vector<std::string> check_critical_paths(
    const std::vector<CriticalPath>& paths) {
  std::vector<std::string> errors;
  char buf[256];
  const auto fail = [&](const CriticalPath& p, const char* what) {
    std::snprintf(buf, sizeof(buf), "tx %s: %s", tx_str(p.tx).c_str(), what);
    errors.emplace_back(buf);
  };
  for (const CriticalPath& p : paths) {
    if (p.commit < p.begin) {
      fail(p, "commit before begin");
      continue;
    }
    if (p.edges.empty()) {
      if (p.commit != p.begin) fail(p, "no edges but nonzero latency");
      continue;
    }
    Timestamp cursor = p.begin;
    Timestamp sum = 0;
    bool ok = true;
    for (const CriticalEdge& e : p.edges) {
      if (e.from != cursor) {
        fail(p, "gap or overlap between edges");
        ok = false;
        break;
      }
      if (e.to <= e.from) {
        fail(p, "non-positive edge width");
        ok = false;
        break;
      }
      cursor = e.to;
      sum += e.duration();
    }
    if (!ok) continue;
    if (cursor != p.commit) fail(p, "last edge does not end at commit");
    if (sum != p.commit - p.begin)
      fail(p, "edge durations do not sum to begin->commit latency");
  }
  return errors;
}

namespace {

Timestamp nearest_rank(std::vector<Timestamp>& sorted, unsigned pct) {
  if (sorted.empty()) return 0;
  const std::size_t n = sorted.size();
  std::size_t rank = (n * pct + 99) / 100;  // ceil(n * pct / 100)
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace

PathAggregate aggregate(const std::vector<CriticalPath>& paths) {
  PathAggregate agg;
  std::array<std::vector<Timestamp>, kNumEdgeClasses> durations;
  std::vector<Timestamp> latencies;
  latencies.reserve(paths.size());
  for (const CriticalPath& p : paths) {
    ++agg.committed;
    latencies.push_back(p.commit - p.begin);
    agg.total_latency_us += p.commit - p.begin;
    std::array<bool, kNumEdgeClasses> seen{};
    for (const CriticalEdge& e : p.edges) {
      const auto c = static_cast<std::size_t>(e.cls);
      durations[c].push_back(e.duration());
      agg.per_class[c].total_us += e.duration();
      if (!seen[c]) {
        seen[c] = true;
        ++agg.per_class[c].txns;
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  agg.latency_p50_us = nearest_rank(latencies, 50);
  agg.latency_p99_us = nearest_rank(latencies, 99);
  for (std::size_t c = 0; c < kNumEdgeClasses; ++c) {
    EdgeClassStats& s = agg.per_class[c];
    std::vector<Timestamp>& d = durations[c];
    s.count = d.size();
    if (d.empty()) continue;
    std::sort(d.begin(), d.end());
    s.mean_us = static_cast<double>(s.total_us) / static_cast<double>(s.count);
    s.p50_us = nearest_rank(d, 50);
    s.p99_us = nearest_rank(d, 99);
    s.max_us = d.back();
  }
  return agg;
}

LineageStats lineage(const std::vector<TraceEvent>& events) {
  LineageStats ls;
  struct AbortInfo {
    AbortReason reason = AbortReason::None;
    TxId parent;
    Timestamp at = 0;
  };
  std::unordered_map<TxId, AbortInfo, TxIdHash> aborts;
  std::unordered_map<TxId, Timestamp, TxIdHash> begun;
  /// writer -> distinct speculative readers.
  std::unordered_map<TxId, std::vector<TxId>, TxIdHash> readers_of;

  for (const TraceEvent& ev : events) {
    switch (ev.type) {
      case TraceEventType::TxBegin:
        begun[ev.tx] = ev.at;
        break;
      case TraceEventType::ReadReady:
        if (ev.b != 0 && ev.other.valid()) {
          ++ls.spec_reads;
          std::vector<TxId>& rs = readers_of[ev.other];
          if (std::find(rs.begin(), rs.end(), ev.tx) == rs.end())
            rs.push_back(ev.tx);
        }
        break;
      case TraceEventType::TxAbort:
        aborts[ev.tx] = {static_cast<AbortReason>(ev.a), ev.other, ev.at};
        break;
      default:
        break;
    }
  }

  ls.spec_writers = readers_of.size();
  for (const auto& [writer, rs] : readers_of) {
    ls.spec_edges += rs.size();
    ls.max_fanout = std::max<std::uint64_t>(ls.max_fanout, rs.size());
  }
  if (ls.spec_writers != 0)
    ls.mean_fanout = static_cast<double>(ls.spec_edges) /
                     static_cast<double>(ls.spec_writers);

  ls.aborts = aborts.size();
  std::unordered_map<TxId, CascadeTree, TxIdHash> trees;
  for (const auto& [tx, info] : aborts) {
    if (begun.count(tx) != 0) ls.aborted_work_us += info.at - begun[tx];
    if (info.reason != AbortReason::CascadingAbort) continue;
    ++ls.cascading_aborts;
    // Walk the parent chain up to the root cause — the ancestor whose own
    // abort was not itself a cascade.
    TxId cur = info.parent;
    std::uint64_t depth = 1;
    bool attributed = false;
    for (std::size_t hops = 0; hops <= aborts.size(); ++hops) {
      const auto p = aborts.find(cur);
      if (p == aborts.end()) break;  // root fell off the ring
      if (p->second.reason != AbortReason::CascadingAbort) {
        CascadeTree& t = trees[cur];
        t.root = cur;
        t.root_reason = p->second.reason;
        ++t.size;
        t.max_depth = std::max(t.max_depth, depth);
        attributed = true;
        break;
      }
      cur = p->second.parent;
      ++depth;
    }
    if (!attributed) {
      ++ls.unattributed;
      continue;
    }
    if (ls.depth_histogram.size() < depth) ls.depth_histogram.resize(depth);
    ++ls.depth_histogram[depth - 1];
  }
  ls.trees.reserve(trees.size());
  for (const auto& [root, t] : trees) ls.trees.push_back(t);
  std::sort(ls.trees.begin(), ls.trees.end(),
            [](const CascadeTree& a, const CascadeTree& b) {
              return a.root < b.root;
            });
  return ls;
}

// ---------------------------------------------------------------------------
// Chrome-trace re-parsing

namespace {

/// Schema mirror of the exporter's arg-name tables (export.cpp). The
/// round-trip test pins the two against each other.
struct ArgNames {
  const char* a;
  const char* b;
};

ArgNames event_arg_names(TraceEventType t) {
  switch (t) {
    case TraceEventType::TxBegin: return {"rs", nullptr};
    case TraceEventType::ReadIssued: return {"key", "remote"};
    case TraceEventType::ReadReady: return {"key", "speculative"};
    case TraceEventType::GateParked: return {"key", nullptr};
    case TraceEventType::GateReleased: return {"key", "parked_us"};
    case TraceEventType::LocalCertStart: return {"write_set", nullptr};
    case TraceEventType::LocalCertEnd: return {"lc", nullptr};
    case TraceEventType::PrepareSent: return {"to_node", "partition"};
    case TraceEventType::PrepareAck: return {"from_node", "refused"};
    case TraceEventType::DepWait: return {"unresolved", nullptr};
    case TraceEventType::DepResolved: return {"remaining", nullptr};
    case TraceEventType::TxCommit: return {"fc", "fc_minus_rs"};
    case TraceEventType::TxAbort: return {"reason", nullptr};
    case TraceEventType::CommitRequested: return {"write_set", nullptr};
  }
  return {"a", "b"};
}

ArgNames span_arg_names(SpanKind k) {
  switch (k) {
    case SpanKind::Txn: return {"committed", "final"};
    case SpanKind::Read: return {"key", "speculative"};
    case SpanKind::GateStall: return {"key", nullptr};
    case SpanKind::LocalCert: return {"write_set", nullptr};
    case SpanKind::PrepareLeg: return {"partition", "node"};
    case SpanKind::DepWait: return {nullptr, nullptr};
    case SpanKind::Handle: return {"msg", "partition"};
    case SpanKind::Probe: return {"msg", "partition"};
  }
  return {"a", "b"};
}

bool parse_tx_id(const std::string& s, TxId& out) {
  unsigned node = 0;
  unsigned long long seq = 0;
  char extra = '\0';
  if (std::sscanf(s.c_str(), "%u.%llu%c", &node, &seq, &extra) != 2)
    return false;
  out.node = static_cast<NodeId>(node);
  out.seq = seq;
  return true;
}

bool abort_reason_from_string(const std::string& s, AbortReason& out) {
  for (int r = 0; r <= static_cast<int>(AbortReason::NodeCrash); ++r) {
    if (s == to_string(static_cast<AbortReason>(r))) {
      out = static_cast<AbortReason>(r);
      return true;
    }
  }
  return false;
}

std::uint64_t arg_u(const json::Value& args, const char* name) {
  if (name == nullptr) return 0;
  const json::Value* v = args.find(name);
  return v != nullptr && v->is_uint() ? v->u() : 0;
}

}  // namespace

bool parse_chrome_trace(const std::string& json_text, ParsedTrace& out,
                        std::string& error) {
  json::Value root;
  if (!json::parse(json_text, root, error)) return false;
  const json::Value* evs = root.find("traceEvents");
  if (evs == nullptr || !evs->is_array()) {
    error = "missing traceEvents array";
    return false;
  }
  std::unordered_map<std::uint64_t, std::size_t> flow_index;
  for (const json::Value& e : evs->array) {
    const json::Value* ph = e.find("ph");
    const json::Value* name = e.find("name");
    if (ph == nullptr || !ph->is_string() || name == nullptr ||
        !name->is_string()) {
      error = "trace event without ph/name";
      return false;
    }
    const std::string& p = ph->string;
    const std::uint64_t tid = arg_u(e, "tid");
    const std::uint64_t ts = arg_u(e, "ts");
    if (p == "M") {
      if (name->string == "thread_name")
        out.num_nodes = std::max<std::uint32_t>(
            out.num_nodes, static_cast<std::uint32_t>(tid) + 1);
      continue;
    }
    if (p == "s" || p == "f") {
      const std::uint64_t id = arg_u(e, "id");
      auto [it, fresh] = flow_index.try_emplace(id, out.flows.size());
      if (fresh) {
        out.flows.emplace_back();
        out.flows.back().id = id;
      }
      ParsedTrace::Flow& f = out.flows[it->second];
      if (p == "s") {
        f.src_node = static_cast<NodeId>(tid);
        f.src_ts = ts;
        f.has_src = true;
      } else {
        f.dst_node = static_cast<NodeId>(tid);
        f.dst_ts = ts;
        f.has_dst = true;
      }
      continue;
    }
    const json::Value* args = e.find("args");
    if (args == nullptr || !args->is_object()) {
      error = "trace event without args";
      return false;
    }
    const json::Value* txv = args->find("tx");
    TxId tx;
    if (txv == nullptr || !txv->is_string() || !parse_tx_id(txv->string, tx)) {
      error = "trace event without parseable tx";
      return false;
    }
    if (p == "X") {
      SpanRecord sp;
      if (!span_kind_from_string(name->string, sp.kind)) {
        error = "unknown span kind: " + name->string;
        return false;
      }
      sp.tx = tx;
      sp.node = static_cast<NodeId>(tid);
      sp.start = ts;
      sp.end = ts + arg_u(e, "dur");
      sp.id = arg_u(*args, "span");
      sp.parent = arg_u(*args, "parent");
      const ArgNames names = span_arg_names(sp.kind);
      sp.a = arg_u(*args, names.a);
      sp.b = arg_u(*args, names.b);
      out.spans.push_back(sp);
      continue;
    }
    if (p != "b" && p != "e" && p != "n") {
      error = "unknown ph: " + p;
      return false;
    }
    TraceEvent ev;
    ev.at = ts;
    ev.node = static_cast<NodeId>(tid);
    ev.tx = tx;
    if (p == "b") {
      ev.type = TraceEventType::TxBegin;
    } else if (p == "e") {
      ev.type = args->find("reason") != nullptr ? TraceEventType::TxAbort
                                                : TraceEventType::TxCommit;
    } else if (!trace_event_type_from_string(name->string, ev.type)) {
      error = "unknown event type: " + name->string;
      return false;
    }
    if (ev.type == TraceEventType::TxAbort) {
      const json::Value* reason = args->find("reason");
      AbortReason r = AbortReason::None;
      if (reason == nullptr || !reason->is_string() ||
          !abort_reason_from_string(reason->string, r)) {
        error = "abort event without parseable reason";
        return false;
      }
      ev.a = static_cast<std::uint64_t>(r);
    } else {
      const ArgNames names = event_arg_names(ev.type);
      ev.a = arg_u(*args, names.a);
      ev.b = arg_u(*args, names.b);
    }
    const json::Value* other = args->find(
        ev.type == TraceEventType::TxAbort ? "cascade_of" : "writer");
    if (other != nullptr && other->is_string() &&
        !parse_tx_id(other->string, ev.other)) {
      error = "unparseable causal tx reference";
      return false;
    }
    out.events.push_back(ev);
  }
  const json::Value* other_data = root.find("otherData");
  if (other_data != nullptr) {
    out.dropped_events = arg_u(*other_data, "dropped_events");
    out.dropped_spans = arg_u(*other_data, "dropped_spans");
  }
  return true;
}

}  // namespace str::obs
