// Self-tuning controller (§5.5).
//
// A centralized feedback loop: measure cluster throughput with speculative
// reads enabled for one interval, disabled for the next, then lock in the
// better configuration. The measurement source is the raw commit meter, so
// the controller is entirely black-box with respect to the data store and
// the workload — exactly the paper's design. Optionally, a CUSUM-style load
// change detector re-triggers the trial when the input load shifts (the
// extension §5.5 sketches).
#pragma once

#include "common/types.hpp"
#include "protocol/cluster.hpp"
#include "sim/coro.hpp"

namespace str::tuning {

struct SelfTunerConfig {
  /// Measurement interval per configuration (the paper samples at 10s).
  Timestamp interval = sec(10);
  /// Settle time after flipping the configuration before measuring, so
  /// in-flight transactions from the previous configuration drain and do
  /// not contaminate the sample.
  Timestamp settle = sec(2);
  /// Settle time before the first trial (lets the system warm up).
  Timestamp initial_delay = sec(2);
  /// Re-run the trial whenever the commit-rate CUSUM drifts by this factor
  /// from the rate observed at decision time (0 disables re-tuning).
  double retune_threshold = 0.0;
  /// How often the change detector samples when retuning is enabled.
  Timestamp monitor_interval = sec(5);
};

class SelfTuner {
 public:
  SelfTuner(protocol::Cluster& cluster, SelfTunerConfig config);

  /// Spawn the controller fiber. Call once, before or during warmup.
  void start();

  bool decided() const { return decided_; }
  bool speculation_chosen() const { return speculation_chosen_; }
  std::uint32_t trials_run() const { return trials_; }

  /// Virtual time at which the first decision was made (0 if undecided).
  Timestamp decided_at() const { return decided_at_; }

 private:
  sim::Fiber run();

  /// One on/off trial; sets the better configuration and returns it.
  struct TrialResult {
    double on_rate = 0.0;
    double off_rate = 0.0;
  };

  double measure_commits_per_sec(Timestamp window_start,
                                 std::uint64_t commits_at_start) const;

  protocol::Cluster& cluster_;
  SelfTunerConfig config_;
  bool started_ = false;
  bool decided_ = false;
  bool speculation_chosen_ = true;
  Timestamp decided_at_ = 0;
  std::uint32_t trials_ = 0;
  double rate_at_decision_ = 0.0;
};

}  // namespace str::tuning
