#include "tuning/cusum.hpp"

#include <algorithm>

namespace str::tuning {

bool CusumDetector::add_sample(double value) {
  ++samples_seen_;
  if (samples_seen_ <= config_.calibration_samples) {
    // Running mean over the calibration window.
    mean_ += (value - mean_) / static_cast<double>(samples_seen_);
    return false;
  }
  const double k = config_.drift_frac * mean_;
  const double h = config_.threshold_frac * mean_;
  pos_sum_ = std::max(0.0, pos_sum_ + (value - mean_) - k);
  neg_sum_ = std::max(0.0, neg_sum_ + (mean_ - value) - k);
  if (pos_sum_ > h || neg_sum_ > h) {
    ++changes_;
    const auto keep = changes_;
    reset();
    changes_ = keep;
    return true;
  }
  return false;
}

void CusumDetector::reset() {
  samples_seen_ = 0;
  mean_ = 0.0;
  pos_sum_ = 0.0;
  neg_sum_ = 0.0;
}

}  // namespace str::tuning
