#include "tuning/self_tuner.hpp"

#include "tuning/cusum.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace str::tuning {

SelfTuner::SelfTuner(protocol::Cluster& cluster, SelfTunerConfig config)
    : cluster_(cluster), config_(config) {}

void SelfTuner::start() {
  STR_ASSERT_MSG(!started_, "SelfTuner started twice");
  started_ = true;
  run();
}

double SelfTuner::measure_commits_per_sec(Timestamp window_start,
                                          std::uint64_t commits_at_start) const {
  const Timestamp now = cluster_.now();
  const auto commits =
      cluster_.metrics().commit_meter().total() - commits_at_start;
  const double span = static_cast<double>(now - window_start) / 1e6;
  return span <= 0.0 ? 0.0 : static_cast<double>(commits) / span;
}

sim::Fiber SelfTuner::run() {
  auto& sched = cluster_.scheduler();
  co_await sim::sleep_for(sched, config_.initial_delay);

  for (;;) {
    // Trial phase A: speculation on.
    cluster_.set_speculation_enabled(true);
    co_await sim::sleep_for(sched, config_.settle);
    Timestamp t0 = cluster_.now();
    std::uint64_t c0 = cluster_.metrics().commit_meter().total();
    co_await sim::sleep_for(sched, config_.interval);
    const double on_rate = measure_commits_per_sec(t0, c0);

    // Trial phase B: speculation off.
    cluster_.set_speculation_enabled(false);
    co_await sim::sleep_for(sched, config_.settle);
    t0 = cluster_.now();
    c0 = cluster_.metrics().commit_meter().total();
    co_await sim::sleep_for(sched, config_.interval);
    const double off_rate = measure_commits_per_sec(t0, c0);

    speculation_chosen_ = on_rate >= off_rate;
    cluster_.set_speculation_enabled(speculation_chosen_);
    ++trials_;
    if (!decided_) {
      decided_ = true;
      decided_at_ = cluster_.now();
    }
    rate_at_decision_ = speculation_chosen_ ? on_rate : off_rate;
    STR_INFO("self-tuner: on=%.1f tps off=%.1f tps -> speculation %s",
             on_rate, off_rate, speculation_chosen_ ? "ON" : "OFF");

    if (config_.retune_threshold <= 0.0) co_return;

    // Change detection via CUSUM (the §5.5 extension): sample the commit
    // rate every monitoring interval; a statistically meaningful shift
    // re-triggers the on/off trial.
    CusumDetector::Config dcfg;
    dcfg.drift_frac = config_.retune_threshold / 2.0;
    dcfg.threshold_frac = config_.retune_threshold;
    CusumDetector detector(dcfg);
    for (;;) {
      co_await sim::sleep_for(sched, config_.monitor_interval);
      const double current = cluster_.metrics().commit_meter().rate(
          cluster_.now(), config_.monitor_interval);
      if (detector.add_sample(current)) break;  // re-trial
    }
  }
}

}  // namespace str::tuning
