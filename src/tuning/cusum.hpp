// Two-sided CUSUM change detector (Page's test), the classic algorithm the
// paper cites (Basseville & Nikiforov) for detecting statistically
// meaningful changes of the input load and re-triggering self-tuning.
//
// The detector is fed one sample per monitoring interval. It maintains
// cumulative sums of positive and negative deviations from a reference mean
// (estimated from the first `calibration_samples` samples); when either sum
// exceeds the threshold, a change is signalled and the detector resets.
#pragma once

#include <cstdint>

namespace str::tuning {

class CusumDetector {
 public:
  struct Config {
    /// Samples used to estimate the reference mean after (re)calibration.
    std::uint32_t calibration_samples = 3;
    /// Allowed drift per sample, as a fraction of the reference mean
    /// (deviations below this are absorbed — the "slack" k).
    double drift_frac = 0.1;
    /// Detection threshold as a multiple of the reference mean (h).
    double threshold_frac = 0.5;
  };

  CusumDetector() : CusumDetector(Config{}) {}
  explicit CusumDetector(Config config) : config_(config) {}

  /// Feed one sample; returns true when a change is detected (the detector
  /// then recalibrates on subsequent samples).
  bool add_sample(double value);

  bool calibrated() const { return samples_seen_ >= config_.calibration_samples; }
  double reference_mean() const { return mean_; }
  std::uint32_t changes_detected() const { return changes_; }

  void reset();

 private:
  Config config_;
  std::uint32_t samples_seen_ = 0;
  double mean_ = 0.0;
  double pos_sum_ = 0.0;
  double neg_sum_ = 0.0;
  std::uint32_t changes_ = 0;
};

}  // namespace str::tuning
