// Figure 4 reproduction: normalized throughput of STR statically configured
// with speculative reads enabled (SR) or disabled (No SR), and with the
// self-tuning controller (Auto), on Synth-A and Synth-B across client
// counts. Each group is normalized to the best static configuration, as in
// the paper; the figure's claim is that Auto tracks the best static choice
// in every cell.
//
// Usage: bench_fig4_selftuning [--quick|--full]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hpp"
#include "harness/report.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace str;  // NOLINT
using harness::ExperimentConfig;
using harness::ExperimentResult;
using protocol::ProtocolConfig;
using workload::SyntheticConfig;
using workload::SyntheticWorkload;

enum class Size { Quick, Medium, Full };

ExperimentConfig base_config(std::uint32_t clients, Size size) {
  const bool quick = size != Size::Full;
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 9;
  cfg.cluster.replication_factor = 6;
  cfg.cluster.topology = net::Topology::ec2_nine_regions();
  cfg.cluster.seed = 42;
  cfg.total_clients = clients;
  cfg.warmup = quick ? sec(2) : sec(4);
  cfg.duration = size == Size::Quick ? sec(8)
                 : size == Size::Medium ? sec(15)
                                        : sec(30);
  cfg.drain = sec(3);
  cfg.tuner.interval = quick ? sec(3) : sec(10);
  cfg.tuner.initial_delay = sec(1);
  return cfg;
}

void run_panel(const char* title, const SyntheticConfig& wcfg,
               const std::vector<std::uint32_t>& client_counts, Size size) {
  struct Variant {
    const char* name;
    bool speculation;
    bool auto_tune;
  };
  const Variant variants[] = {
      {"No SR", false, false},
      {"SR", true, false},
      {"Auto", true, true},
  };

  std::vector<harness::SweepJob> jobs;
  for (std::uint32_t clients : client_counts) {
    for (const auto& v : variants) {
      harness::SweepJob job;
      job.config = base_config(clients, size);
      // All variants run the STR engine (Precise Clocks on); only the use
      // of speculative reads differs, statically or dynamically.
      job.config.cluster.protocol = ProtocolConfig::str();
      job.config.cluster.protocol.speculative_reads = v.speculation;
      job.config.self_tuning = v.auto_tune;
      job.factory = [wcfg](protocol::Cluster& c) {
        return std::make_unique<SyntheticWorkload>(c, wcfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  auto results = harness::run_sweep(std::move(jobs));

  std::printf("\n=== Figure 4: %s ===\n", title);
  harness::Table table({"clients", "No SR", "SR", "Auto", "auto chose",
                        "best static"});
  std::size_t i = 0;
  for (std::uint32_t clients : client_counts) {
    const double no_sr = results[i].throughput;
    const double sr = results[i + 1].throughput;
    const double auto_thr = results[i + 2].throughput;
    const bool auto_spec = results[i + 2].speculation_enabled_at_end;
    const double best = std::max(no_sr, sr);
    table.add_row({
        std::to_string(clients),
        harness::Table::fmt(best > 0 ? no_sr / best : 0, 2),
        harness::Table::fmt(best > 0 ? sr / best : 0, 2),
        harness::Table::fmt(best > 0 ? auto_thr / best : 0, 2),
        auto_spec ? "SR" : "No SR",
        sr >= no_sr ? "SR" : "No SR",
    });
    i += 3;
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  Size size = Size::Medium;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) size = Size::Quick;
    if (std::strcmp(argv[i], "--full") == 0) size = Size::Full;
  }
  const std::vector<std::uint32_t> counts =
      size == Size::Quick    ? std::vector<std::uint32_t>{10, 160}
      : size == Size::Medium ? std::vector<std::uint32_t>{10, 40, 160, 320}
                             : std::vector<std::uint32_t>{2, 10, 40, 80, 160, 320};

  run_panel("Synth-A", SyntheticConfig::synth_a(), counts, size);
  run_panel("Synth-B", SyntheticConfig::synth_b(), counts, size);
  return 0;
}
