// Figure 3 reproduction: ClockSI-Rep vs Ext-Spec vs STR on the synthetic
// workloads Synth-A (high local / low remote contention — speculation's best
// case) and Synth-B (high local AND remote contention — speculation's worst
// case), sweeping the total client count.
//
// For each (workload, clients, protocol) cell the harness reports the three
// panels of the figure: throughput, final latency (plus speculative latency
// for Ext-Spec), and abort rate (plus misspeculation rate).
//
// Usage: bench_fig3_synth [--quick|--full]
//   --quick  shorter windows and a smaller sweep (CI-friendly)
//   --full   the paper-scale sweep (2..320 clients, 30s windows)
//   default  a medium sweep that finishes in a couple of minutes

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hpp"
#include "harness/report.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace str;  // NOLINT
using harness::ExperimentConfig;
using harness::ExperimentResult;
using protocol::ProtocolConfig;
using workload::SyntheticConfig;
using workload::SyntheticWorkload;

struct ProtocolChoice {
  const char* name;
  ProtocolConfig config;
  bool self_tuning;
};

enum class Size { Quick, Medium, Full };

ExperimentConfig make_config(const ProtocolChoice& proto, std::uint32_t clients,
                             Size size) {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 9;
  cfg.cluster.replication_factor = 6;
  cfg.cluster.topology = net::Topology::ec2_nine_regions();
  cfg.cluster.protocol = proto.config;
  cfg.cluster.seed = 42;
  cfg.total_clients = clients;
  cfg.warmup = size == Size::Full ? sec(4) : sec(2);
  cfg.duration = size == Size::Quick ? sec(8)
                 : size == Size::Medium ? sec(15)
                                        : sec(30);
  cfg.drain = sec(3);
  cfg.self_tuning = proto.self_tuning;
  cfg.tuner.interval = size == Size::Full ? sec(10) : sec(3);
  cfg.tuner.initial_delay = sec(1);
  return cfg;
}

void run_panel(const char* title, const SyntheticConfig& wcfg,
               const std::vector<std::uint32_t>& client_counts, Size size) {
  const ProtocolChoice protocols[] = {
      {"ClockSI-Rep", ProtocolConfig::clocksi_rep(), false},
      {"Ext-Spec", ProtocolConfig::ext_spec(), false},
      {"STR", ProtocolConfig::str(), true},
  };

  std::vector<harness::SweepJob> jobs;
  for (std::uint32_t clients : client_counts) {
    for (const auto& proto : protocols) {
      harness::SweepJob job;
      job.config = make_config(proto, clients, size);
      job.factory = [wcfg](protocol::Cluster& c) {
        return std::make_unique<SyntheticWorkload>(c, wcfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  std::vector<ExperimentResult> results = harness::run_sweep(std::move(jobs));

  std::printf("\n=== Figure 3: %s ===\n", title);
  harness::Table table({"clients", "protocol", "thr (tps)", "final lat",
                        "spec lat", "abort", "misspec/ext-misspec",
                        "spec?"});
  std::size_t i = 0;
  for (std::uint32_t clients : client_counts) {
    for (const auto& proto : protocols) {
      const ExperimentResult& r = results[i++];
      const bool ext = proto.config.externalize_local_commit;
      table.add_row({
          std::to_string(clients),
          proto.name,
          harness::Table::fmt(r.throughput),
          harness::Table::fmt_ms(static_cast<std::uint64_t>(r.final_latency_mean)),
          ext ? harness::Table::fmt_ms(
                    static_cast<std::uint64_t>(r.speculative_latency_mean))
              : "-",
          harness::Table::fmt_pct(r.abort_rate),
          ext ? harness::Table::fmt_pct(r.external_misspeculation_rate)
              : harness::Table::fmt_pct(r.misspeculation_rate),
          proto.self_tuning ? (r.speculation_enabled_at_end ? "on" : "off")
                            : "-",
      });
    }
  }
  table.print();

  // Headline factors (paper: Synth-A up to 11.5x throughput, ~10x latency).
  std::size_t base = 0;
  double best_gain = 0;
  for (std::size_t row = 0; row + 2 < results.size(); row += 3) {
    const double clocksi = results[row].throughput;
    const double strv = results[row + 2].throughput;
    if (clocksi > 0) best_gain = std::max(best_gain, strv / clocksi);
    (void)base;
  }
  std::printf("max STR/ClockSI-Rep throughput gain: %.2fx\n", best_gain);
}

}  // namespace

int main(int argc, char** argv) {
  Size size = Size::Medium;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) size = Size::Quick;
    if (std::strcmp(argv[i], "--full") == 0) size = Size::Full;
  }
  const std::vector<std::uint32_t> counts =
      size == Size::Quick ? std::vector<std::uint32_t>{2, 10, 40}
      : size == Size::Medium
          ? std::vector<std::uint32_t>{2, 10, 40, 160, 320}
          : std::vector<std::uint32_t>{2, 5, 10, 20, 40, 80, 160, 320};

  run_panel("Synth-A (favourable: high local, low remote contention)",
            SyntheticConfig::synth_a(), counts, size);
  run_panel("Synth-B (unfavourable: high local AND remote contention)",
            SyntheticConfig::synth_b(), counts, size);
  return 0;
}
