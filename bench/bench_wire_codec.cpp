// Wire-codec microbenchmark: encode/decode cost per message type.
//
// Builds one representative message of every type (payload sizes chosen to
// match the synthetic workload's value sizes), then times tight
// encode-frame and decode-frame loops. This is the per-message overhead a
// --wire run pays on top of the closure transport; bench_core_speed --wire
// reports the same cost end-to-end. Numbers are wall-clock and
// machine-dependent — this bench has no committed baseline and is not
// gated, it exists so codec changes can be measured (docs/PERFORMANCE.md).
//
// Usage: bench_wire_codec [--quick] [--iters N]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "protocol/messages.hpp"
#include "wire/messages.hpp"

using namespace str;  // NOLINT

namespace {

protocol::SharedUpdates make_updates(std::size_t count,
                                     std::size_t value_size) {
  auto list = std::make_shared<protocol::UpdateList>();
  for (std::size_t i = 0; i < count; ++i) {
    list->emplace_back(0x1000 + i * 7,
                       std::make_shared<Value>(std::string(value_size, 'v')));
  }
  return list;
}

struct Timed {
  double encode_ns = 0;
  double decode_ns = 0;
  std::size_t frame_bytes = 0;
};

template <class M>
Timed time_codec(const M& msg, std::uint64_t iters) {
  using Clock = std::chrono::steady_clock;
  Timed t;
  const wire::Buffer frame = wire::encode_frame(msg);
  t.frame_bytes = frame.size();

  std::uint64_t sink = 0;  // defeat dead-code elimination
  auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    wire::Buffer b = wire::encode_frame(msg);
    sink += b.size();
  }
  auto mid = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    wire::AnyMessage out;
    sink += static_cast<std::uint64_t>(
        wire::decode_frame(frame.data(), frame.size(), out));
  }
  auto end = Clock::now();
  if (sink == 0xdead) std::puts("");  // keep `sink` observable

  t.encode_ns = std::chrono::duration<double, std::nano>(mid - start).count() /
                static_cast<double>(iters);
  t.decode_ns = std::chrono::duration<double, std::nano>(end - mid).count() /
                static_cast<double>(iters);
  return t;
}

template <class M>
void report(const char* name, const M& msg, std::uint64_t iters) {
  const Timed t = time_codec(msg, iters);
  const double rt_ns = t.encode_ns + t.decode_ns;
  const double mbps =
      rt_ns > 0 ? static_cast<double>(t.frame_bytes) * 2 * 1e3 / rt_ns : 0;
  std::printf("  %-18s %5zu B   encode %8.1f ns   decode %8.1f ns   "
              "%8.0f MB/s\n",
              name, t.frame_bytes, t.encode_ns, t.decode_ns, mbps);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      iters = 200'000;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--iters N]\n", argv[0]);
      return 1;
    }
  }

  const TxId tx{3, 0x1234};
  const SharedValue value =
      std::make_shared<Value>(std::string(64, 'x'));

  protocol::ReadRequest read_req{tx, 3, 42, 0xabcdef, usec(7'100'000)};
  protocol::ReadReply read_reply;
  read_reply.reader = tx;
  read_reply.req_id = 42;
  read_reply.key = 0xabcdef;
  read_reply.found = true;
  read_reply.value = value;
  read_reply.writer = TxId{5, 0x99};
  read_reply.version_ts = usec(7'000'000);
  protocol::PrepareRequest prep{tx, 3, 2, usec(7'100'000),
                                make_updates(4, 64)};
  protocol::PrepareReply prep_reply{tx, 2, 6, true, usec(7'200'000)};
  protocol::ReplicateRequest repl{tx, 3, 2, usec(7'100'000),
                                  make_updates(4, 64)};
  protocol::CommitMessage commit{tx, 2, usec(7'300'000)};
  protocol::AbortMessage abort_msg{tx, 2};
  protocol::DecisionRequest dec_req{tx, 2, 6};
  protocol::DecisionReply dec_reply{tx, 2, protocol::TxDecision::Committed,
                                    usec(7'300'000)};

  std::printf("=== wire codec encode/decode (%llu iters/type) ===\n",
              static_cast<unsigned long long>(iters));
  report("read_request", read_req, iters);
  report("read_reply", read_reply, iters);
  report("prepare_request", prep, iters);
  report("prepare_reply", prep_reply, iters);
  report("replicate_request", repl, iters);
  report("commit", commit, iters);
  report("abort", abort_msg, iters);
  report("decision_request", dec_req, iters);
  report("decision_reply", dec_reply, iters);
  return 0;
}
