// Figure 6 reproduction: ClockSI-Rep vs Ext-Spec vs STR on RUBiS with the
// default 15% update mix and 2-10s think times. The paper reports ~43%
// higher throughput for STR at 4000 clients and up to 10x final-latency
// reduction; external speculation only helps latency at low load.
//
// Usage: bench_fig6_rubis [--quick|--full]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hpp"
#include "harness/report.hpp"
#include "workload/rubis.hpp"

namespace {

using namespace str;  // NOLINT
using harness::ExperimentResult;
using protocol::ProtocolConfig;
using workload::RubisConfig;
using workload::RubisWorkload;

}  // namespace

int main(int argc, char** argv) {
  int size = 1;  // 0 quick, 1 medium, 2 full
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) size = 0;
    if (std::strcmp(argv[i], "--full") == 0) size = 2;
  }
  const bool quick = size < 2;
  const std::vector<std::uint32_t> counts =
      size == 0 ? std::vector<std::uint32_t>{1000, 4000}
      : size == 1 ? std::vector<std::uint32_t>{1000, 4000, 8000}
                  : std::vector<std::uint32_t>{500, 1000, 2000, 4000, 8000, 16000};

  struct ProtocolChoice {
    const char* name;
    ProtocolConfig config;
    bool self_tuning;
  };
  const ProtocolChoice protocols[] = {
      {"ClockSI-Rep", ProtocolConfig::clocksi_rep(), false},
      {"Ext-Spec", ProtocolConfig::ext_spec(), false},
      {"STR", ProtocolConfig::str(), true},
  };

  RubisConfig wcfg;  // default 15% update workload
  std::vector<harness::SweepJob> jobs;
  for (std::uint32_t clients : counts) {
    for (const auto& proto : protocols) {
      harness::SweepJob job;
      job.config.cluster.num_nodes = 9;
      job.config.cluster.replication_factor = 6;
      job.config.cluster.topology = net::Topology::ec2_nine_regions();
      job.config.cluster.protocol = proto.config;
      job.config.cluster.seed = 42;
      job.config.total_clients = clients;
      job.config.warmup = quick ? sec(4) : sec(8);
      job.config.duration = size == 0 ? sec(20) : size == 1 ? sec(30) : sec(60);
      job.config.drain = sec(5);
      job.config.self_tuning = proto.self_tuning;
      job.config.tuner.interval = quick ? sec(5) : sec(10);
      job.config.tuner.initial_delay = sec(2);
      job.factory = [wcfg](protocol::Cluster& c) {
        return std::make_unique<RubisWorkload>(c, wcfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  auto results = harness::run_sweep(std::move(jobs));

  std::printf("=== Figure 6: RUBiS (15%% updates, 2-10s think time) ===\n");
  harness::Table table({"clients", "protocol", "thr (tps)", "final lat",
                        "spec lat", "abort", "misspec/ext-misspec", "spec?"});
  std::size_t i = 0;
  double best_gain = 0;
  double best_lat_gain = 0;
  for (std::uint32_t clients : counts) {
    const double base_thr = results[i].throughput;
    const double base_lat = results[i].final_latency_mean;
    for (const auto& proto : protocols) {
      const ExperimentResult& r = results[i++];
      const bool ext = proto.config.externalize_local_commit;
      table.add_row({
          std::to_string(clients),
          proto.name,
          harness::Table::fmt(r.throughput),
          harness::Table::fmt_ms(static_cast<std::uint64_t>(r.final_latency_mean)),
          ext ? harness::Table::fmt_ms(
                    static_cast<std::uint64_t>(r.speculative_latency_mean))
              : "-",
          harness::Table::fmt_pct(r.abort_rate),
          ext ? harness::Table::fmt_pct(r.external_misspeculation_rate)
              : harness::Table::fmt_pct(r.misspeculation_rate),
          proto.self_tuning ? (r.speculation_enabled_at_end ? "on" : "off")
                            : "-",
      });
      if (proto.self_tuning && base_thr > 0) {
        best_gain = std::max(best_gain, r.throughput / base_thr);
        if (r.final_latency_mean > 0) {
          best_lat_gain =
              std::max(best_lat_gain, base_lat / r.final_latency_mean);
        }
      }
    }
  }
  table.print();
  std::printf("max STR throughput gain: %.2fx   max latency reduction: %.2fx\n",
              best_gain, best_lat_gain);
  return 0;
}
