// Microbenchmarks (google-benchmark) for the hot components of the
// simulator and store: event queue, scheduler, coroutine rendezvous,
// multi-version store operations, RNG, and histogram recording. These set
// expectations for how much wall time a unit of simulated work costs.

#include <benchmark/benchmark.h>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/unique_function.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"
#include "store/mvstore.hpp"

namespace {

using namespace str;  // NOLINT

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(1);
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) q.push(rng.uniform(1000000), []() {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SchedulerSelfPosting(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    std::uint64_t count = 0;
    std::function<void()> tick = [&]() {
      if (++count < 10000) sched.schedule_after(1, [&]() { tick(); });
    };
    sched.schedule_at(0, [&]() { tick(); });
    state.ResumeTiming();
    sched.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerSelfPosting);

sim::Fiber await_and_count(sim::Future<int> f, std::uint64_t& n) {
  n += static_cast<std::uint64_t>(co_await f);
}

void BM_CoroutineRendezvous(benchmark::State& state) {
  sim::Scheduler sched;
  std::uint64_t n = 0;
  for (auto _ : state) {
    sim::Promise<int> p(sched);
    await_and_count(p.future(), n);
    p.set_value(1);
    sched.run();
  }
  benchmark::DoNotOptimize(n);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoroutineRendezvous);

void BM_UniqueFunctionDispatch(benchmark::State& state) {
  std::uint64_t acc = 0;
  UniqueFunction<void()> fn = [&acc]() { ++acc; };
  for (auto _ : state) fn();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_UniqueFunctionDispatch);

void BM_MvStoreRead(benchmark::State& state) {
  store::PartitionStore s;
  const int keys = static_cast<int>(state.range(0));
  for (int k = 0; k < keys; ++k) s.load(k, "value-of-reasonable-size-64b");
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.read(rng.uniform(keys), 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvStoreRead)->Arg(1000)->Arg(100000);

void BM_MvStorePrepareCommit(benchmark::State& state) {
  store::PartitionStore s;
  for (int k = 0; k < 1000; ++k) s.load(k, "x");
  Rng rng(3);
  std::uint64_t seq = 1;
  Timestamp ts = 10;
  for (auto _ : state) {
    TxId tx{0, seq++};
    std::vector<std::pair<Key, SharedValue>> upd{
        {rng.uniform(1000), std::make_shared<Value>("updated-value")}};
    auto pr = s.prepare(tx, ts, upd, true, ts);
    if (pr.ok) {
      s.local_commit(tx, pr.proposed_ts);
      s.final_commit(tx, pr.proposed_ts + 1);
      ts = pr.proposed_ts + 2;
    }
  }
  s.gc(ts);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvStorePrepareCommit);

void BM_MvStoreVersionChainScan(benchmark::State& state) {
  // Deep chains (pre-GC worst case).
  store::PartitionStore s;
  s.load(1, "v");
  Timestamp ts = 1;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    TxId tx{0, static_cast<std::uint64_t>(i + 1)};
    std::vector<std::pair<Key, SharedValue>> upd{
        {1, std::make_shared<Value>("v")}};
    auto pr = s.prepare(tx, ts, upd, true, ts);
    s.final_commit(tx, pr.proposed_ts);
    ts = pr.proposed_ts + 1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.peek(1, ts / 2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvStoreVersionChainScan)->Arg(8)->Arg(64)->Arg(512);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(4);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng.uniform(1000000);
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(5);
  for (auto _ : state) h.record(rng.uniform(10'000'000));
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram h;
  Rng rng(6);
  for (int i = 0; i < 100000; ++i) h.record(rng.uniform(10'000'000));
  for (auto _ : state) benchmark::DoNotOptimize(h.p99());
}
BENCHMARK(BM_HistogramQuantile);

}  // namespace
