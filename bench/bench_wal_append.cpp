// WAL append/replay microbenchmark: per-record cost of the durability path.
//
// Measures three things over an in-memory SimMedium (synchronous sync, so
// the numbers isolate CPU cost — encode, frame, checksum, batch bookkeeping
// — from the modeled fsync latency the DES charges):
//
//   append  — encode_commit + Wal::append, swept over group-commit batch
//             sizes. Batch 1 syncs every record; larger batches amortize
//             the flush bookkeeping exactly as a real group commit
//             amortizes the fsync.
//   replay  — checksum-scan + decode of the log just written (the restart
//             path), reported as records/s and MB/s.
//   scan    — durable_prefix() validation alone (crash-time fate checks).
//   quorum  — encode_decision + the ReplicatedDecisionLog ack barrier in
//             the zero-latency limit (members ack inside the send hook), so
//             the number isolates the tracking/bookkeeping cost the quorum
//             commit point adds per decision, swept over quorum sizes.
//
// Numbers are wall-clock and machine-dependent: no committed baseline, not
// gated (the deterministic-counter gate for the durability path lives in
// bench_core_speed / BENCH_CORE.json). This bench exists so codec or
// batching changes can be measured (docs/DURABILITY.md, docs/PERFORMANCE.md).
//
// Usage: bench_wal_append [--quick] [--records N] [--value-bytes B]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "sim/scheduler.hpp"
#include "storage/decision_log.hpp"
#include "storage/medium.hpp"
#include "storage/wal.hpp"

using namespace str;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

storage::WalUpdates make_updates(std::uint64_t i, std::size_t value_bytes) {
  storage::WalUpdates u;
  u.emplace_back(0x1000 + i * 7,
                 std::make_shared<Value>(std::string(value_bytes, 'v')));
  return u;
}

struct RunResult {
  std::uint64_t bytes = 0;
  double seconds = 0;
};

RunResult append_run(std::uint32_t batch, std::uint64_t records,
                     std::size_t value_bytes) {
  sim::Scheduler sched;
  storage::Wal::Options opts;
  opts.group_commit_batch = batch;
  // Null scheduler in the medium => sync completes inline; the Wal still
  // uses `sched` only to arm deadline timers we never need to fire (every
  // batch fills before its deadline, and stale timers are generation-
  // checked, so leaving them unprocessed is fine for a bench).
  storage::Wal wal(sched,
                   std::make_unique<storage::SimMedium>(
                       nullptr, /*fsync_latency=*/0, storage::TornWriteFault{}),
                   opts, storage::Wal::Counters{});

  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < records; ++i) {
    wire::Buffer frame;
    storage::encode_commit(frame, TxId{0, i}, /*commit_ts=*/i,
                           make_updates(i, value_bytes));
    wal.append(frame);
  }
  wal.sync([] {});
  RunResult r;
  r.seconds = seconds_since(start);
  r.bytes = wal.end_offset();
  if (wal.durable_prefix() != wal.end_offset()) {
    std::fprintf(stderr, "FATAL: log not fully durable after sync\n");
    std::exit(1);
  }
  return r;
}

RunResult quorum_run(std::uint32_t quorum, std::uint64_t records) {
  sim::Scheduler sched;
  storage::Wal::Options opts;
  opts.group_commit_batch = 8;
  storage::Wal wal(sched,
                   std::make_unique<storage::SimMedium>(
                       nullptr, /*fsync_latency=*/0, storage::TornWriteFault{}),
                   opts, storage::Wal::Counters{});
  storage::ReplicatedDecisionLog::Options dopts;
  dopts.quorum = quorum;
  dopts.members = {1, 2};  // group of 3, counting the origin
  storage::ReplicatedDecisionLog* raw = nullptr;
  // Members ack synchronously inside the send hook: the zero-latency limit,
  // so the measurement is pure barrier bookkeeping, no modeled RTT.
  storage::ReplicatedDecisionLog log(
      sched, wal, dopts,
      [&raw](const TxId& tx, Timestamp, Timestamp,
             const std::vector<NodeId>& to) {
        for (NodeId m : to) raw->on_ack(tx, m);
      });
  raw = &log;

  std::uint64_t completed = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < records; ++i) {
    log.append(TxId{0, i}, /*commit_ts=*/i, /*decided_at=*/i,
               [&completed] { ++completed; });
    // Completed barriers leave armed (no-op) retransmit timers behind;
    // drain them in batches so the bench's event queue stays flat.
    if ((i & 0xffff) == 0xffff) sched.run_until(sched.now() + sec(10));
  }
  wal.sync([] {});
  sched.run_until(sched.now() + sec(10));
  RunResult r;
  r.seconds = seconds_since(start);
  r.bytes = wal.end_offset();
  if (completed != records || log.pending_count() != 0) {
    std::fprintf(stderr, "FATAL: quorum=%u completed %llu of %llu (%zu stuck)\n",
                 quorum, static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(records),
                 log.pending_count());
    std::exit(1);
  }
  return r;
}

void report(const char* name, std::uint64_t count, const RunResult& r) {
  const double mrps = r.seconds > 0
                          ? static_cast<double>(count) / r.seconds / 1e6
                          : 0;
  const double mbps = r.seconds > 0
                          ? static_cast<double>(r.bytes) / r.seconds / 1e6
                          : 0;
  std::printf("  %-22s %9.2f M records/s   %8.0f MB/s   (%llu records, "
              "%.3fs)\n",
              name, mrps, mbps, static_cast<unsigned long long>(count),
              r.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t records = 2'000'000;
  std::size_t value_bytes = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      records = 100'000;
    } else if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      records = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--value-bytes") == 0 && i + 1 < argc) {
      value_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--records N] [--value-bytes B]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("=== WAL append/replay (%llu records, %zu-byte values) ===\n",
              static_cast<unsigned long long>(records), value_bytes);

  for (std::uint32_t batch : {1u, 8u, 64u}) {
    char name[32];
    std::snprintf(name, sizeof(name), "append (batch %u)", batch);
    report(name, records, append_run(batch, records, value_bytes));
  }

  // Quorum 1 is the pre-quorum decision append (barrier completes on local
  // durability); 2 and 3 add member-ack tracking over a group of three.
  for (std::uint32_t quorum : {1u, 2u, 3u}) {
    char name[32];
    std::snprintf(name, sizeof(name), "decision (quorum %u)", quorum);
    report(name, records, quorum_run(quorum, records));
  }

  // Build one log, then time the two read-side paths over it.
  sim::Scheduler sched;
  storage::Wal wal(sched,
                   std::make_unique<storage::SimMedium>(
                       nullptr, /*fsync_latency=*/0, storage::TornWriteFault{}),
                   storage::Wal::Options{}, storage::Wal::Counters{});
  for (std::uint64_t i = 0; i < records; ++i) {
    wire::Buffer frame;
    storage::encode_commit(frame, TxId{0, i}, i, make_updates(i, value_bytes));
    wal.append(frame);
  }
  wal.sync([] {});

  {
    const auto start = Clock::now();
    const std::uint64_t prefix = wal.durable_prefix();
    RunResult r{prefix, seconds_since(start)};
    report("scan (durable_prefix)", records, r);
  }
  {
    std::uint64_t visited = 0;
    const auto start = Clock::now();
    const storage::WalScanResult scan =
        wal.replay([&visited](const storage::WalRecord&) { ++visited; });
    RunResult r{scan.valid_bytes, seconds_since(start)};
    report("replay (decode)", visited, r);
    if (visited != records || scan.torn) {
      std::fprintf(stderr, "FATAL: replay visited %llu of %llu (torn=%d)\n",
                   static_cast<unsigned long long>(visited),
                   static_cast<unsigned long long>(records), scan.torn);
      return 1;
    }
  }
  return 0;
}
