// Real-transport microbenchmark: echo round-trip latency and streaming
// throughput for each socket backend (docs/TRANSPORT.md).
//
// Two shapes per backend:
//   - echo: one frame ping-pongs 0 -> 1 -> 0 with a single frame in flight;
//     each round trip is one latency sample (p50/p99 of the full path:
//     queue, writev, kernel, reassemble, dispatch — twice).
//   - stream: a burst of frames 0 -> 1 with no application-level flow
//     control; frames/sec and MB/s once the last frame lands.
//
// Numbers are wall-clock and machine-dependent — like bench_wire_codec this
// has no committed baseline and is not gated; it exists so transport changes
// can be measured. JSON goes to BENCH_TRANSPORT.json (schema in the spirit
// of BENCH_CORE.json, docs/PERFORMANCE.md).
//
// Usage: bench_transport [--quick] [--iters N] [--frame-bytes N] [--out FILE]

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport/transport.hpp"
#include "wire/messages.hpp"

using namespace str;  // NOLINT

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  bool quick = false;
  std::uint64_t echo_iters = 20'000;
  std::uint64_t stream_frames = 200'000;
  std::size_t frame_body = 256;
  const char* out = "BENCH_TRANSPORT.json";
};

struct BackendResult {
  const char* backend = "";
  double rtt_mean_us = 0;
  double rtt_p50_us = 0;
  double rtt_p99_us = 0;
  double stream_frames_per_sec = 0;
  double stream_mb_per_sec = 0;
};

/// A syntactically valid frame of `body` payload bytes (the transport only
/// needs the length-prefix framing, not decodable content).
wire::Buffer make_frame(std::size_t body) {
  wire::Buffer f;
  const auto rest = static_cast<std::uint32_t>(
      wire::kFrameTypeBytes + body + wire::kFrameChecksumBytes);
  f.push_back(static_cast<std::uint8_t>(rest & 0xff));
  f.push_back(static_cast<std::uint8_t>((rest >> 8) & 0xff));
  f.push_back(static_cast<std::uint8_t>((rest >> 16) & 0xff));
  f.push_back(static_cast<std::uint8_t>((rest >> 24) & 0xff));
  f.push_back(1);
  f.resize(f.size() + body + wire::kFrameChecksumBytes, 0x5a);
  return f;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

BackendResult run_backend(net::TransportKind kind, const Options& opt) {
  BackendResult r;
  r.backend = net::to_string(kind);
  const wire::Buffer frame = make_frame(opt.frame_body);

  // -- echo round trips, one frame in flight --------------------------------
  {
    auto tp = net::make_transport(kind);
    net::Transport* raw = tp.get();
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t pongs = 0;
    tp->start(2, [&](NodeId to, std::vector<std::uint8_t> f) {
      if (to == 1) {
        raw->send(1, 0, std::move(f));
        return;
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        ++pongs;
      }
      cv.notify_one();
    });
    auto round_trip = [&](std::uint64_t upto) {
      tp->send(0, 1, frame);
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return pongs >= upto; });
    };
    for (std::uint64_t i = 1; i <= 200; ++i) round_trip(i);  // warm the path
    std::vector<double> rtt_us(opt.echo_iters);
    double sum = 0;
    for (std::uint64_t i = 0; i < opt.echo_iters; ++i) {
      const auto t0 = Clock::now();
      round_trip(201 + i);
      rtt_us[i] =
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
      sum += rtt_us[i];
    }
    tp->stop();
    std::sort(rtt_us.begin(), rtt_us.end());
    r.rtt_mean_us = sum / static_cast<double>(opt.echo_iters);
    r.rtt_p50_us = percentile(rtt_us, 0.50);
    r.rtt_p99_us = percentile(rtt_us, 0.99);
  }

  // -- streaming throughput -------------------------------------------------
  {
    auto tp = net::make_transport(kind);
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t received = 0;
    tp->start(2, [&](NodeId, std::vector<std::uint8_t>) {
      {
        std::lock_guard<std::mutex> lk(mu);
        ++received;
      }
      cv.notify_one();
    });
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < opt.stream_frames; ++i) {
      tp->send(0, 1, frame);
    }
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return received >= opt.stream_frames; });
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    tp->stop();
    r.stream_frames_per_sec =
        wall_s > 0 ? static_cast<double>(opt.stream_frames) / wall_s : 0;
    r.stream_mb_per_sec = r.stream_frames_per_sec *
                          static_cast<double>(frame.size()) / 1e6;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
      opt.echo_iters = 2'000;
      opt.stream_frames = 20'000;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      opt.echo_iters = std::strtoull(argv[++i], nullptr, 10);
      opt.stream_frames = opt.echo_iters * 10;
    } else if (std::strcmp(argv[i], "--frame-bytes") == 0 && i + 1 < argc) {
      opt.frame_body = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--iters N] [--frame-bytes N] "
                   "[--out FILE]\n",
                   argv[0]);
      return 1;
    }
  }

  const std::size_t frame_bytes = make_frame(opt.frame_body).size();
  std::printf("=== transport echo/stream (%llu rtts, %llu frames, %zu B/frame) "
              "===\n",
              static_cast<unsigned long long>(opt.echo_iters),
              static_cast<unsigned long long>(opt.stream_frames), frame_bytes);
  std::vector<BackendResult> results;
  for (const net::TransportKind kind :
       {net::TransportKind::kSocketpair, net::TransportKind::kTcp}) {
    const BackendResult r = run_backend(kind, opt);
    std::printf("  %-10s rtt mean %7.1f us  p50 %7.1f us  p99 %7.1f us   "
                "stream %9.0f frames/s  %7.1f MB/s\n",
                r.backend, r.rtt_mean_us, r.rtt_p50_us, r.rtt_p99_us,
                r.stream_frames_per_sec, r.stream_mb_per_sec);
    results.push_back(r);
  }

  std::FILE* f = std::fopen(opt.out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.out);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"transport\",\n"
               "  \"schema_version\": 1,\n"
               "  \"quick\": %s,\n"
               "  \"echo_iters\": %llu,\n"
               "  \"stream_frames\": %llu,\n"
               "  \"frame_bytes\": %zu,\n"
               "  \"backends\": [\n",
               opt.quick ? "true" : "false",
               static_cast<unsigned long long>(opt.echo_iters),
               static_cast<unsigned long long>(opt.stream_frames), frame_bytes);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BackendResult& r = results[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"backend\": \"%s\",\n"
                 "      \"echo_rtt_mean_us\": %.2f,\n"
                 "      \"echo_rtt_p50_us\": %.2f,\n"
                 "      \"echo_rtt_p99_us\": %.2f,\n"
                 "      \"stream_frames_per_sec\": %.0f,\n"
                 "      \"stream_mb_per_sec\": %.2f\n"
                 "    }%s\n",
                 r.backend, r.rtt_mean_us, r.rtt_p50_us, r.rtt_p99_us,
                 r.stream_frames_per_sec, r.stream_mb_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return 0;
}
