// Ablation sweeps for the paper's evaluation question (3): "Which workload
// characteristics have the strongest impact on the performance of STR?"
//
// Starting from Synth-A, each sweep varies one workload dimension while
// holding the rest fixed, and reports STR's throughput gain over
// ClockSI-Rep plus STR's misspeculation rate:
//
//   A. remote contention    — remote hotspot size (the Synth-A -> Synth-B axis)
//   B. remote access share  — fraction of accesses leaving the local partition
//   C. local contention     — local hotspot size
//   D. read-only share      — fraction of read-only transactions
//   E. far-access share     — fraction of remote accesses to non-replicated
//                             partitions (exercises the cache partition)
//
// Usage: bench_ablation_sweeps [--quick]

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hpp"
#include "harness/report.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace str;  // NOLINT
using harness::ExperimentConfig;
using harness::ExperimentResult;
using protocol::ProtocolConfig;
using workload::SyntheticConfig;
using workload::SyntheticWorkload;

ExperimentConfig base_config(const ProtocolConfig& proto, bool quick) {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 9;
  cfg.cluster.replication_factor = 6;
  cfg.cluster.topology = net::Topology::ec2_nine_regions();
  cfg.cluster.protocol = proto;
  cfg.cluster.seed = 42;
  cfg.total_clients = 160;
  cfg.warmup = sec(2);
  cfg.duration = quick ? sec(8) : sec(15);
  cfg.drain = sec(3);
  return cfg;
}

struct SweepPoint {
  std::string label;
  SyntheticConfig wcfg;
};

void run_sweep_panel(const char* title,
                     const std::vector<SweepPoint>& points, bool quick) {
  std::vector<harness::SweepJob> jobs;
  for (const auto& point : points) {
    for (const ProtocolConfig& proto :
         {ProtocolConfig::clocksi_rep(), ProtocolConfig::str()}) {
      harness::SweepJob job;
      job.config = base_config(proto, quick);
      const SyntheticConfig wcfg = point.wcfg;
      job.factory = [wcfg](protocol::Cluster& c) {
        return std::make_unique<SyntheticWorkload>(c, wcfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  auto results = harness::run_sweep(std::move(jobs));

  std::printf("\n=== Ablation: %s (160 clients) ===\n", title);
  harness::Table table({"setting", "ClockSI tps", "STR tps", "gain",
                        "STR abort", "STR misspec"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ExperimentResult& base = results[2 * i];
    const ExperimentResult& spec = results[2 * i + 1];
    table.add_row({
        points[i].label,
        harness::Table::fmt(base.throughput),
        harness::Table::fmt(spec.throughput),
        base.throughput > 0
            ? harness::Table::fmt(spec.throughput / base.throughput, 2) + "x"
            : "-",
        harness::Table::fmt_pct(spec.abort_rate),
        harness::Table::fmt_pct(spec.misspeculation_rate),
    });
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // A. Remote contention: shrink the remote hotspot from Synth-A's 800 keys
  // to Synth-B's 3 and beyond.
  {
    std::vector<SweepPoint> points;
    for (std::uint32_t h : {800u, 100u, 20u, 3u, 1u}) {
      SyntheticConfig w = SyntheticConfig::synth_a();
      w.remote_hotspot = h;
      points.push_back({"remote hotspot " + std::to_string(h), w});
    }
    run_sweep_panel("remote contention (Synth-A -> Synth-B axis)", points,
                    quick);
  }

  // B. Remote access share.
  {
    std::vector<SweepPoint> points;
    for (double p : {0.0, 0.1, 0.3, 0.6, 0.9}) {
      SyntheticConfig w = SyntheticConfig::synth_a();
      w.remote_access_prob = p;
      points.push_back(
          {"remote access " + harness::Table::fmt_pct(p), w});
    }
    run_sweep_panel("remote access share", points, quick);
  }

  // C. Local contention.
  {
    std::vector<SweepPoint> points;
    for (std::uint32_t h : {1u, 4u, 16u, 64u, 1024u}) {
      SyntheticConfig w = SyntheticConfig::synth_a();
      w.local_hotspot = h;
      points.push_back({"local hotspot " + std::to_string(h), w});
    }
    run_sweep_panel("local contention", points, quick);
  }

  // D. Read-only share.
  {
    std::vector<SweepPoint> points;
    for (double p : {0.0, 0.25, 0.5, 0.9}) {
      SyntheticConfig w = SyntheticConfig::synth_a();
      w.read_only_fraction = p;
      points.push_back({"read-only " + harness::Table::fmt_pct(p), w});
    }
    run_sweep_panel("read-only transaction share", points, quick);
  }

  // E. Far-access share (cache-partition pressure).
  {
    std::vector<SweepPoint> points;
    for (double p : {0.0, 0.1, 0.5, 1.0}) {
      SyntheticConfig w = SyntheticConfig::synth_a();
      w.far_access_frac = p;
      points.push_back({"far accesses " + harness::Table::fmt_pct(p), w});
    }
    run_sweep_panel("far (non-replicated) access share", points, quick);
  }
  return 0;
}
