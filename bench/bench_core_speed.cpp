// DES core-speed baseline: how fast does the simulator itself run?
//
// Every result in the repo comes out of the discrete-event simulator, so
// events/sec *is* experiment throughput. This harness drives a fixed-seed
// 9-region synthetic run and reports, for the measurement window only:
//
//   events/sec            scheduler events executed per wall-clock second
//   txns/sec              committed transactions per wall-clock second
//   allocs/event          heap allocations per event, via the interposing
//                         operator-new counter below
//   peak versions/key     longest MV version chain observed on any key
//
// The numbers are written to BENCH_CORE.json; the copy committed at the
// repo root is the regression baseline that CI's bench-smoke job compares
// against (scripts/check_bench_regression.py). The event/commit counts and
// peak chain length are fully deterministic for a given seed; wall-clock
// rates and the alloc count depend on the machine/stdlib. See
// docs/PERFORMANCE.md for the schema and how to regenerate the baseline.
//
// --threads N runs the region-sharded parallel scheduler on N worker
// threads (BENCH_PARALLEL.json is the committed threads=4 baseline). The
// deterministic counters of a parallel run differ from threads=1 by design
// (the sharded mode re-times cross-region hops on the lookahead lattice)
// but are identical for every worker count >= 2 and every machine. Per-
// worker allocation tallies are reported so skew in allocator pressure
// across shards is visible, not averaged away.
//
// Usage: bench_core_speed [--quick] [--threads N] [--out PATH]
//                         [--duration SEC] [--seed N]

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "protocol/cluster.hpp"
#include "workload/client.hpp"
#include "workload/synthetic.hpp"

// ---------------------------------------------------------------------------
// Interposing allocation counter: every global operator new in the process
// bumps these. The atomics hold process-wide totals; the thread_locals let
// --threads runs attribute allocations to the worker that made them (each
// worker owns its shard's event loop, so per-thread == per-shard pressure).
namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_alloc_bytes = 0;

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  ++t_allocs;
  t_alloc_bytes += size;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  ++t_allocs;
  t_alloc_bytes += size;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

using namespace str;  // NOLINT

namespace {

struct Options {
  bool quick = false;
  bool wire = false;
  const char* out = "BENCH_CORE.json";
  std::uint64_t seed = 42;
  Timestamp duration = sec(10);
  std::uint32_t clients = 180;
  std::uint32_t threads = 1;
};

std::uint64_t peak_versions_per_key(protocol::Cluster& cluster) {
  std::uint64_t peak = 0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (const auto& [pid, actor] : cluster.node(n).replicas()) {
      peak = std::max(peak, actor->store().stats().peak_chain);
    }
  }
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
      opt.duration = sec(3);
    } else if (std::strcmp(argv[i], "--wire") == 0) {
      // Wire codec mode: same events and commits (the transport is
      // behaviour-neutral), but every message pays encode + decode, so the
      // wall-clock and allocation numbers report the codec overhead.
      opt.wire = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      opt.duration = sec(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      if (opt.threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--wire] [--threads N] [--out PATH] "
                   "[--duration SEC] [--seed N]\n",
                   argv[0]);
      return 1;
    }
  }

  protocol::Cluster::Config cfg;
  cfg.num_nodes = 9;
  cfg.partitions_per_node = 1;
  cfg.replication_factor = 6;
  cfg.topology = net::Topology::ec2_nine_regions();
  cfg.protocol = protocol::ProtocolConfig::str();
  cfg.seed = opt.seed;
  cfg.wire_codec = opt.wire;
  cfg.threads = opt.threads;

  protocol::Cluster cluster(cfg);
  workload::SyntheticWorkload wl(cluster,
                                 workload::SyntheticConfig::synth_a());
  wl.load(cluster);
  auto pool = workload::ClientPool::with_total(cluster, wl, opt.clients);
  pool.start_all();

  const Timestamp warmup = sec(1);
  cluster.run_for(warmup);
  cluster.metrics().set_measurement_start(cluster.now());

  // Per-worker allocation tallies: snapshot each worker thread's counter at
  // the window edges (worker 0 is the calling thread). Sized before the
  // snapshot so the vector's own allocation stays outside the window.
  const std::uint32_t workers = opt.threads;
  std::vector<std::uint64_t> worker_allocs(workers, 0);
  std::vector<std::uint64_t> worker_alloc_bytes(workers, 0);
  cluster.sharded().for_each_worker([&](std::uint32_t w) {
    worker_allocs[w] = t_allocs;
    worker_alloc_bytes[w] = t_alloc_bytes;
  });

  // executed() sums every shard's queue, which in --threads mode is the
  // only correct event count (scheduler() would see one shard's slice).
  const std::uint64_t events_before = cluster.sharded().executed();
  const std::uint64_t allocs_before = g_allocs.load();
  const std::uint64_t bytes_before = g_alloc_bytes.load();
  const auto wall_start = std::chrono::steady_clock::now();

  cluster.run_for(opt.duration);

  const auto wall_end = std::chrono::steady_clock::now();
  cluster.sharded().for_each_worker([&](std::uint32_t w) {
    worker_allocs[w] = t_allocs - worker_allocs[w];
    worker_alloc_bytes[w] = t_alloc_bytes - worker_alloc_bytes[w];
  });
  const std::uint64_t events = cluster.sharded().executed() - events_before;
  const std::uint64_t allocs = g_allocs.load() - allocs_before;
  const std::uint64_t alloc_bytes = g_alloc_bytes.load() - bytes_before;
  const std::uint64_t commits = cluster.metrics().commits();
  const std::uint64_t epochs = cluster.sharded().epochs();
  const std::uint64_t cross_posts = cluster.sharded().cross_posts();

  // Drain (excluded from the window) so teardown is clean.
  pool.request_stop_all();
  cluster.run_for(sec(3));

  const std::uint64_t peak_chain = peak_versions_per_key(cluster);
  const double wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  const double events_per_sec =
      wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  const double txns_per_sec =
      wall_s > 0.0 ? static_cast<double>(commits) / wall_s : 0.0;
  const double allocs_per_event =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                 : 0.0;

  std::printf("=== DES core speed (seed %llu, %u clients, %llu s virtual, "
              "%u thread%s%s) ===\n",
              static_cast<unsigned long long>(opt.seed), opt.clients,
              static_cast<unsigned long long>(opt.duration / sec(1)),
              opt.threads, opt.threads == 1 ? "" : "s",
              opt.wire ? ", wire codec" : "");
  std::printf("  events            %12llu\n",
              static_cast<unsigned long long>(events));
  std::printf("  wall seconds      %12.3f\n", wall_s);
  std::printf("  events/sec        %12.0f\n", events_per_sec);
  std::printf("  commits           %12llu\n",
              static_cast<unsigned long long>(commits));
  std::printf("  txns/sec          %12.0f\n", txns_per_sec);
  std::printf("  allocs            %12llu\n",
              static_cast<unsigned long long>(allocs));
  std::printf("  allocs/event      %12.3f\n", allocs_per_event);
  std::printf("  peak versions/key %12llu\n",
              static_cast<unsigned long long>(peak_chain));
  if (opt.threads > 1) {
    std::printf("  epoch barriers    %12llu\n",
                static_cast<unsigned long long>(epochs));
    std::printf("  cross-shard posts %12llu\n",
                static_cast<unsigned long long>(cross_posts));
    for (std::uint32_t w = 0; w < workers; ++w) {
      std::printf("  worker %u allocs   %12llu (%llu bytes)\n", w,
                  static_cast<unsigned long long>(worker_allocs[w]),
                  static_cast<unsigned long long>(worker_alloc_bytes[w]));
    }
  }

  std::string allocs_per_thread = "[";
  for (std::uint32_t w = 0; w < workers; ++w) {
    if (w != 0) allocs_per_thread += ", ";
    allocs_per_thread += std::to_string(worker_allocs[w]);
  }
  allocs_per_thread += "]";

  std::FILE* f = std::fopen(opt.out, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.out);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"core_speed\",\n"
               "  \"schema_version\": 2,\n"
               "  \"seed\": %llu,\n"
               "  \"quick\": %s,\n"
               "  \"wire\": %s,\n"
               "  \"threads\": %u,\n"
               "  \"clients\": %u,\n"
               "  \"virtual_warmup_s\": %llu,\n"
               "  \"virtual_duration_s\": %llu,\n"
               "  \"events\": %llu,\n"
               "  \"wall_s\": %.6f,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"commits\": %llu,\n"
               "  \"txns_per_sec\": %.1f,\n"
               "  \"allocs\": %llu,\n"
               "  \"alloc_bytes\": %llu,\n"
               "  \"allocs_per_event\": %.4f,\n"
               "  \"allocs_per_thread\": %s,\n"
               "  \"epoch_barriers\": %llu,\n"
               "  \"cross_shard_posts\": %llu,\n"
               "  \"peak_versions_per_key\": %llu\n"
               "}\n",
               static_cast<unsigned long long>(opt.seed),
               opt.quick ? "true" : "false", opt.wire ? "true" : "false",
               opt.threads, opt.clients,
               static_cast<unsigned long long>(warmup / sec(1)),
               static_cast<unsigned long long>(opt.duration / sec(1)),
               static_cast<unsigned long long>(events), wall_s,
               events_per_sec, static_cast<unsigned long long>(commits),
               txns_per_sec, static_cast<unsigned long long>(allocs),
               static_cast<unsigned long long>(alloc_bytes), allocs_per_event,
               allocs_per_thread.c_str(),
               static_cast<unsigned long long>(epochs),
               static_cast<unsigned long long>(cross_posts),
               static_cast<unsigned long long>(peak_chain));
  std::fclose(f);
  return 0;
}
