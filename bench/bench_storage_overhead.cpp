// §6.1 storage-overhead measurement: Precise Clocks keeps one extra
// timestamp (LastReader) per key. The paper reports ~9% extra storage for
// the TPC-C and RUBiS data sets. This harness loads and exercises both
// benchmarks, then accounts storage bytes with and without the per-key
// LastReader metadata across every partition replica.

#include <cstdio>
#include <memory>

#include "protocol/cluster.hpp"
#include "workload/client.hpp"
#include "workload/rubis.hpp"
#include "workload/tpcc.hpp"

using namespace str;  // NOLINT

namespace {

struct Accounting {
  std::uint64_t with_lastreader = 0;
  std::uint64_t without = 0;
};

Accounting account(protocol::Cluster& cluster) {
  Accounting acc;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (PartitionId p = 0; p < cluster.pmap().num_partitions(); ++p) {
      auto* actor = cluster.node(n).replica(p);
      if (actor == nullptr) continue;
      acc.with_lastreader += actor->store().storage_bytes(true);
      acc.without += actor->store().storage_bytes(false);
    }
  }
  return acc;
}

template <class WorkloadT, class ConfigT>
void run_one(const char* name, ConfigT wcfg) {
  protocol::Cluster::Config cfg;
  cfg.num_nodes = 9;
  cfg.replication_factor = 6;
  cfg.topology = net::Topology::ec2_nine_regions();
  cfg.protocol = protocol::ProtocolConfig::str();
  protocol::Cluster cluster(cfg);
  WorkloadT wl(cluster, wcfg);
  wl.load(cluster);
  // Run traffic so the lazily-materialized working set is populated, as on
  // a live system.
  auto pool = workload::ClientPool::with_total(cluster, wl, 180);
  pool.start_all();
  cluster.run_for(sec(30));
  pool.request_stop_all();
  cluster.run_for(sec(3));

  const Accounting acc = account(cluster);
  const double overhead =
      acc.without == 0
          ? 0.0
          : 100.0 * static_cast<double>(acc.with_lastreader - acc.without) /
                static_cast<double>(acc.without);
  std::printf("%-8s  data+versions: %8.2f MB   +LastReader: %8.2f MB   "
              "overhead: %.1f%%\n",
              name, static_cast<double>(acc.without) / 1e6,
              static_cast<double>(acc.with_lastreader) / 1e6, overhead);
}

}  // namespace

int main() {
  std::printf("=== §6.1: Precise Clocks storage overhead "
              "(paper: ~9%% on TPC-C and RUBiS) ===\n");
  workload::TpccConfig tpcc = workload::TpccConfig::mix_b();
  tpcc.think_time_mean = msec(200);
  run_one<workload::TpccWorkload>("TPC-C", tpcc);

  workload::RubisConfig rubis;
  rubis.think_min = msec(100);
  rubis.think_max = msec(400);
  run_one<workload::RubisWorkload>("RUBiS", rubis);
  return 0;
}
