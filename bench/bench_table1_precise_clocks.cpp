// Table 1 reproduction: benefits and overhead of Precise Clocks.
//
// Four systems — Physical clocks vs Precise Clocks, each with speculative
// reads off/on — run the synthetic workload while the number of keys each
// transaction updates grows (10, 20, 40, 100). As in the paper, the key
// space is scaled by the same factor so the contention level stays fixed.
// Each column reports throughput normalized to the 'Physical' row and the
// abort rate.
//
// The paper's findings to reproduce:
//   * Precise Clocks alone reduce aborts and gain throughput, more so for
//     larger transactions (abort cost grows).
//   * Speculative reads with Physical clocks are counter-productive.
//   * Precise + SR is the best configuration.
//
// A second table shows the mechanism through the metrics registry: the mean
// commit-snapshot distance (FC - RS). Precise Clocks propose LastReader+1
// instead of a physical timestamp, so commits land just past the snapshot —
// the distance collapses, and with it the misspeculation window.
//
// Usage: bench_table1_precise_clocks [--quick|--full]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hpp"
#include "harness/report.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace str;  // NOLINT
using harness::ExperimentConfig;
using protocol::ProtocolConfig;
using workload::SyntheticConfig;
using workload::SyntheticWorkload;

struct Variant {
  const char* name;
  bool precise;
  bool speculative;
};

constexpr Variant kVariants[] = {
    {"Physical", false, false},
    {"Precise", true, false},
    {"Physical SR", false, true},
    {"Precise SR", true, true},
};

}  // namespace

int main(int argc, char** argv) {
  int size = 1;  // 0 quick, 1 medium, 2 full
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) size = 0;
    if (std::strcmp(argv[i], "--full") == 0) size = 2;
  }
  const bool quick = size < 2;
  const std::vector<std::uint32_t> key_counts =
      size == 0 ? std::vector<std::uint32_t>{10, 40}
      : size == 1 ? std::vector<std::uint32_t>{10, 40, 100}
                  : std::vector<std::uint32_t>{10, 20, 40, 100};
  const std::uint32_t clients = 160;

  std::vector<harness::SweepJob> jobs;
  for (std::uint32_t keys : key_counts) {
    for (const auto& v : kVariants) {
      ExperimentConfig cfg;
      cfg.cluster.num_nodes = 9;
      cfg.cluster.replication_factor = 6;
      cfg.cluster.topology = net::Topology::ec2_nine_regions();
      cfg.cluster.seed = 42;
      cfg.cluster.protocol.precise_clocks = v.precise;
      cfg.cluster.protocol.speculative_reads = v.speculative;
      cfg.total_clients = clients;
      cfg.warmup = quick ? sec(2) : sec(4);
      cfg.duration = size == 0 ? sec(8) : size == 1 ? sec(15) : sec(30);
      cfg.drain = sec(3);

      SyntheticConfig wcfg = SyntheticConfig::synth_a();
      // Scale transaction size and key space together to hold contention
      // constant (the paper's methodology).
      const double scale = static_cast<double>(keys) / 10.0;
      wcfg.keys_per_txn = keys;
      wcfg.keys_per_half =
          static_cast<std::uint64_t>(100'000 * scale);
      wcfg.local_hotspot = static_cast<std::uint32_t>(1 * scale);
      wcfg.remote_hotspot = static_cast<std::uint32_t>(800 * scale);

      harness::SweepJob job;
      job.config = cfg;
      job.factory = [wcfg](protocol::Cluster& c) {
        return std::make_unique<SyntheticWorkload>(c, wcfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  auto results = harness::run_sweep(std::move(jobs));

  std::printf("=== Table 1: normalized throughput / abort rate ===\n");
  std::printf("(each column normalized to 'Physical'; %u clients)\n\n",
              clients);
  std::vector<std::string> headers = {"technique"};
  for (std::uint32_t keys : key_counts) {
    headers.push_back(std::to_string(keys) + " keys");
  }
  harness::Table table(headers);
  for (std::size_t v = 0; v < std::size(kVariants); ++v) {
    std::vector<std::string> row = {kVariants[v].name};
    for (std::size_t k = 0; k < key_counts.size(); ++k) {
      const auto& physical = results[k * std::size(kVariants)];
      const auto& r = results[k * std::size(kVariants) + v];
      const double norm =
          physical.throughput > 0 ? r.throughput / physical.throughput : 0;
      row.push_back(harness::Table::fmt(norm, 2) + "/" +
                    harness::Table::fmt_pct(r.abort_rate));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\n=== commit-snapshot distance (mean FC - RS, ms) ===\n\n");
  harness::Table dist(headers);
  for (std::size_t v = 0; v < std::size(kVariants); ++v) {
    std::vector<std::string> row = {kVariants[v].name};
    for (std::size_t k = 0; k < key_counts.size(); ++k) {
      const auto& r = results[k * std::size(kVariants) + v];
      row.push_back(
          harness::Table::fmt(r.commit_snapshot_distance_mean / 1000.0, 2));
    }
    dist.add_row(std::move(row));
  }
  dist.print();
  return 0;
}
