// Figure 5 reproduction: ClockSI-Rep vs Ext-Spec vs STR on three TPC-C
// mixes (per §6.2):
//   TPC-C A: 5% new-order, 83% payment, 12% order-status (highest local
//            contention; paper reports STR speedup ~6.13x)
//   TPC-C B: 45% new-order, 43% payment, 12% order-status (~2.12x)
//   TPC-C C: 5% new-order, 43% payment, 52% order-status (~3x)
// Clients have several seconds of think time, so large client populations
// are needed to load the system; the sweep is over total clients.
//
// Usage: bench_fig5_tpcc [--quick|--full]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hpp"
#include "harness/report.hpp"
#include "workload/tpcc.hpp"

namespace {

using namespace str;  // NOLINT
using harness::ExperimentConfig;
using harness::ExperimentResult;
using protocol::ProtocolConfig;
using workload::TpccConfig;
using workload::TpccWorkload;

struct ProtocolChoice {
  const char* name;
  ProtocolConfig config;
  bool self_tuning;
};

enum class Size { Quick, Medium, Full };

void run_panel(const char* title, const TpccConfig& wcfg,
               const std::vector<std::uint32_t>& client_counts, Size size) {
  const bool quick = size != Size::Full;
  const ProtocolChoice protocols[] = {
      {"ClockSI-Rep", ProtocolConfig::clocksi_rep(), false},
      {"Ext-Spec", ProtocolConfig::ext_spec(), false},
      {"STR", ProtocolConfig::str(), true},
  };

  std::vector<harness::SweepJob> jobs;
  for (std::uint32_t clients : client_counts) {
    for (const auto& proto : protocols) {
      harness::SweepJob job;
      job.config.cluster.num_nodes = 9;
      job.config.cluster.replication_factor = 6;
      job.config.cluster.topology = net::Topology::ec2_nine_regions();
      job.config.cluster.protocol = proto.config;
      job.config.cluster.seed = 42;
      job.config.total_clients = clients;
      job.config.warmup = quick ? sec(3) : sec(6);
      job.config.duration = size == Size::Quick ? sec(15)
                            : size == Size::Medium ? sec(20)
                                                   : sec(45);
      job.config.drain = sec(4);
      job.config.self_tuning = proto.self_tuning;
      job.config.tuner.interval = quick ? sec(4) : sec(10);
      job.config.tuner.initial_delay = sec(1);
      job.factory = [wcfg](protocol::Cluster& c) {
        return std::make_unique<TpccWorkload>(c, wcfg);
      };
      jobs.push_back(std::move(job));
    }
  }
  auto results = harness::run_sweep(std::move(jobs));

  std::printf("\n=== Figure 5: %s ===\n", title);
  harness::Table table({"clients", "protocol", "thr (tps)", "final lat",
                        "spec lat", "abort", "misspec/ext-misspec", "spec?"});
  std::size_t i = 0;
  double best_gain = 0;
  for (std::uint32_t clients : client_counts) {
    const double base = results[i].throughput;
    for (const auto& proto : protocols) {
      const ExperimentResult& r = results[i++];
      const bool ext = proto.config.externalize_local_commit;
      table.add_row({
          std::to_string(clients),
          proto.name,
          harness::Table::fmt(r.throughput),
          harness::Table::fmt_ms(static_cast<std::uint64_t>(r.final_latency_mean)),
          ext ? harness::Table::fmt_ms(
                    static_cast<std::uint64_t>(r.speculative_latency_mean))
              : "-",
          harness::Table::fmt_pct(r.abort_rate),
          ext ? harness::Table::fmt_pct(r.external_misspeculation_rate)
              : harness::Table::fmt_pct(r.misspeculation_rate),
          proto.self_tuning ? (r.speculation_enabled_at_end ? "on" : "off")
                            : "-",
      });
      if (base > 0 && proto.self_tuning) {
        best_gain = std::max(best_gain, r.throughput / base);
      }
    }
  }
  table.print();
  std::printf("max STR/ClockSI-Rep throughput gain: %.2fx\n", best_gain);
}

}  // namespace

int main(int argc, char** argv) {
  Size size = Size::Medium;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) size = Size::Quick;
    if (std::strcmp(argv[i], "--full") == 0) size = Size::Full;
  }
  const std::vector<std::uint32_t> counts =
      size == Size::Quick ? std::vector<std::uint32_t>{900, 7200}
      : size == Size::Medium
          ? std::vector<std::uint32_t>{900, 3600, 7200}
          : std::vector<std::uint32_t>{450, 900, 1800, 3600, 7200, 10800};

  run_panel("TPC-C A (5% NO / 83% P / 12% OS)", TpccConfig::mix_a(), counts,
            size);
  run_panel("TPC-C B (45% NO / 43% P / 12% OS)", TpccConfig::mix_b(), counts,
            size);
  run_panel("TPC-C C (5% NO / 43% P / 52% OS)", TpccConfig::mix_c(), counts,
            size);
  return 0;
}
