// trace_analyze — causal-trace analysis for str_sim Chrome traces.
//
// Reads a trace written by `str_sim --trace-out` (or "-" for stdin) and
// reports:
//   * the critical-path breakdown of every committed transaction: which
//     edge class (local compute, local/WAN reads, gate stalls, local
//     certification, WAN prepares, dependency waits, finalization) the
//     begin->commit latency was spent on, with mean/p50/p99 per class;
//   * speculation-lineage statistics: who observed whose speculative
//     versions, cascade-abort trees attributed to their root cause, and
//     the virtual time wasted on aborted work;
//   * optionally (--chrome-out) a visualization overlay: critical-path
//     edges as slices plus flow arrows for speculative observations and
//     cascade aborts, loadable in Perfetto next to the original trace.
//
// --check verifies the exact-coverage invariant (critical-path edges of
// every committed transaction partition [begin, commit] with no gaps,
// overlaps, or rounding slack) and exits 2 on any violation; CI runs this
// on a chaos trace every build.
//
//   str_sim --trace-out - ... | trace_analyze - --check
//   trace_analyze trace.json --json breakdown.json --top 5

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/export.hpp"

using namespace str;  // NOLINT

namespace {

struct Options {
  std::string input = "-";
  std::string json_out;
  std::string chrome_out;
  bool check = false;
  unsigned top = 10;  ///< cascade trees to print
};

void usage() {
  std::puts(
      "trace_analyze: critical-path and speculation-lineage analysis\n"
      "  usage: trace_analyze [FILE|-] [options]\n"
      "  FILE             Chrome trace JSON from str_sim --trace-out\n"
      "                   (\"-\" or omitted: read stdin)\n"
      "  --json PATH      write comparison-ready JSON (\"-\": stdout)\n"
      "  --chrome-out PATH  write a critical-path + lineage overlay trace\n"
      "  --check          verify exact coverage: the critical-path edges of\n"
      "                   every committed txn must partition [begin, commit]\n"
      "                   exactly (exit 2 on violations)\n"
      "  --top N          cascade trees to list                     [10]\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  bool have_input = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option %s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--json") {
      if ((v = next()) == nullptr) return false;
      opt.json_out = v;
    } else if (arg == "--chrome-out") {
      if ((v = next()) == nullptr) return false;
      opt.chrome_out = v;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--top") {
      if ((v = next()) == nullptr) return false;
      opt.top = static_cast<unsigned>(std::atoi(v));
    } else if (arg[0] != '-' || arg == "-") {
      if (have_input) {
        std::fprintf(stderr, "multiple input files\n");
        return false;
      }
      opt.input = arg;
      have_input = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool read_input(const std::string& path, std::string& out) {
  std::FILE* f = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  if (f != stdin) std::fclose(f);
  if (!ok) std::fprintf(stderr, "read error on %s\n", path.c_str());
  return ok;
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  std::va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0)
    out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

std::string tx_str(const TxId& tx) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%u.%" PRIu64, tx.node, tx.seq);
  return buf;
}

void print_breakdown(const obs::PathAggregate& agg) {
  std::printf("critical-path breakdown (%llu committed txns, "
              "mean latency %.1f us, p50 %llu, p99 %llu)\n",
              static_cast<unsigned long long>(agg.committed),
              agg.committed != 0
                  ? static_cast<double>(agg.total_latency_us) /
                        static_cast<double>(agg.committed)
                  : 0.0,
              static_cast<unsigned long long>(agg.latency_p50_us),
              static_cast<unsigned long long>(agg.latency_p99_us));
  std::printf("  %-14s %9s %7s %9s %10s %8s %8s %8s\n", "edge", "edges",
              "txns", "share", "mean_us", "p50_us", "p99_us", "max_us");
  for (std::size_t c = 0; c < obs::kNumEdgeClasses; ++c) {
    const obs::EdgeClassStats& s = agg.per_class[c];
    const double share =
        agg.total_latency_us != 0
            ? 100.0 * static_cast<double>(s.total_us) /
                  static_cast<double>(agg.total_latency_us)
            : 0.0;
    std::printf("  %-14s %9llu %7llu %8.1f%% %10.1f %8llu %8llu %8llu\n",
                obs::to_string(static_cast<obs::EdgeClass>(c)),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.txns), share, s.mean_us,
                static_cast<unsigned long long>(s.p50_us),
                static_cast<unsigned long long>(s.p99_us),
                static_cast<unsigned long long>(s.max_us));
  }
}

void print_lineage(const obs::LineageStats& ls, unsigned top) {
  std::printf(
      "\nspeculation lineage\n"
      "  speculative reads   %10llu  (%llu writer->reader edges, "
      "%llu writers)\n"
      "  fan-out             %10.2f mean, %llu max\n"
      "  aborts              %10llu  (%llu cascading, %llu unattributed)\n"
      "  aborted work        %10llu virtual us\n",
      static_cast<unsigned long long>(ls.spec_reads),
      static_cast<unsigned long long>(ls.spec_edges),
      static_cast<unsigned long long>(ls.spec_writers), ls.mean_fanout,
      static_cast<unsigned long long>(ls.max_fanout),
      static_cast<unsigned long long>(ls.aborts),
      static_cast<unsigned long long>(ls.cascading_aborts),
      static_cast<unsigned long long>(ls.unattributed),
      static_cast<unsigned long long>(ls.aborted_work_us));
  if (!ls.depth_histogram.empty()) {
    std::printf("  cascade depths      ");
    for (std::size_t d = 0; d < ls.depth_histogram.size(); ++d) {
      std::printf("%s%zu:%llu", d == 0 ? "" : " ", d + 1,
                  static_cast<unsigned long long>(ls.depth_histogram[d]));
    }
    std::printf("\n");
  }
  if (!ls.trees.empty()) {
    std::printf("  cascade trees (root-cause attribution, top %u):\n", top);
    unsigned shown = 0;
    for (const obs::CascadeTree& t : ls.trees) {
      if (shown++ >= top) {
        std::printf("    ... %zu more\n", ls.trees.size() - top);
        break;
      }
      std::printf("    root %-12s %-20s size %-4llu depth %llu\n",
                  tx_str(t.root).c_str(), to_string(t.root_reason),
                  static_cast<unsigned long long>(t.size),
                  static_cast<unsigned long long>(t.max_depth));
    }
  }
}

std::string breakdown_json(const obs::PathAggregate& agg,
                           const obs::LineageStats& ls,
                           const obs::ParsedTrace& trace,
                           std::size_t violations) {
  std::string out;
  append(out,
         "{\n\"committed\":%llu,\n"
         "\"latency\":{\"total_us\":%llu,\"mean_us\":%.3f,"
         "\"p50_us\":%llu,\"p99_us\":%llu},\n",
         static_cast<unsigned long long>(agg.committed),
         static_cast<unsigned long long>(agg.total_latency_us),
         agg.committed != 0 ? static_cast<double>(agg.total_latency_us) /
                                  static_cast<double>(agg.committed)
                            : 0.0,
         static_cast<unsigned long long>(agg.latency_p50_us),
         static_cast<unsigned long long>(agg.latency_p99_us));
  out.append("\"edges\":{");
  for (std::size_t c = 0; c < obs::kNumEdgeClasses; ++c) {
    const obs::EdgeClassStats& s = agg.per_class[c];
    append(out,
           "%s\n  \"%s\":{\"count\":%llu,\"txns\":%llu,\"total_us\":%llu,"
           "\"mean_us\":%.3f,\"p50_us\":%llu,\"p99_us\":%llu,"
           "\"max_us\":%llu}",
           c == 0 ? "" : ",", obs::to_string(static_cast<obs::EdgeClass>(c)),
           static_cast<unsigned long long>(s.count),
           static_cast<unsigned long long>(s.txns),
           static_cast<unsigned long long>(s.total_us), s.mean_us,
           static_cast<unsigned long long>(s.p50_us),
           static_cast<unsigned long long>(s.p99_us),
           static_cast<unsigned long long>(s.max_us));
  }
  append(out,
         "\n},\n\"lineage\":{\"spec_reads\":%llu,\"spec_edges\":%llu,"
         "\"spec_writers\":%llu,\"max_fanout\":%llu,\"mean_fanout\":%.3f,"
         "\"aborts\":%llu,\"cascading_aborts\":%llu,\"unattributed\":%llu,"
         "\"aborted_work_us\":%llu,\"depth_histogram\":[",
         static_cast<unsigned long long>(ls.spec_reads),
         static_cast<unsigned long long>(ls.spec_edges),
         static_cast<unsigned long long>(ls.spec_writers),
         static_cast<unsigned long long>(ls.max_fanout), ls.mean_fanout,
         static_cast<unsigned long long>(ls.aborts),
         static_cast<unsigned long long>(ls.cascading_aborts),
         static_cast<unsigned long long>(ls.unattributed),
         static_cast<unsigned long long>(ls.aborted_work_us));
  for (std::size_t d = 0; d < ls.depth_histogram.size(); ++d) {
    append(out, "%s%llu", d == 0 ? "" : ",",
           static_cast<unsigned long long>(ls.depth_histogram[d]));
  }
  out.append("],\"trees\":[");
  for (std::size_t i = 0; i < ls.trees.size(); ++i) {
    const obs::CascadeTree& t = ls.trees[i];
    append(out,
           "%s\n  {\"root\":\"%s\",\"reason\":\"%s\",\"size\":%llu,"
           "\"max_depth\":%llu}",
           i == 0 ? "" : ",", tx_str(t.root).c_str(),
           to_string(t.root_reason), static_cast<unsigned long long>(t.size),
           static_cast<unsigned long long>(t.max_depth));
  }
  append(out,
         "%s]},\n\"dropped\":{\"events\":%llu,\"spans\":%llu},\n"
         "\"check\":{\"violations\":%zu}\n}\n",
         ls.trees.empty() ? "" : "\n",
         static_cast<unsigned long long>(trace.dropped_events),
         static_cast<unsigned long long>(trace.dropped_spans), violations);
  return out;
}

/// Visualization overlay: critical-path edges as slices on each txn's
/// origin-node track, whole-txn slices underneath them, and flow arrows for
/// speculative observations ("spec") and cascade aborts ("cascade").
std::string overlay_chrome_trace(const obs::ParsedTrace& trace,
                                 const std::vector<obs::CriticalPath>& paths) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out.append(",\n");
    first = false;
  };
  for (std::uint32_t n = 0; n < trace.num_nodes; ++n) {
    sep();
    append(out,
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
           "\"args\":{\"name\":\"node %u\"}}",
           n, n);
  }
  // Whole-transaction slices (flow-arrow anchors) from begin/final events.
  struct Interval {
    Timestamp begin = 0, end = 0;
    NodeId node = kInvalidNode;
    bool has_begin = false, has_end = false;
  };
  std::unordered_map<TxId, Interval, TxIdHash> intervals;
  for (const obs::TraceEvent& ev : trace.events) {
    Interval& iv = intervals[ev.tx];
    if (ev.type == obs::TraceEventType::TxBegin) {
      iv.begin = ev.at;
      iv.node = ev.node;
      iv.has_begin = true;
    }
    if (ev.type == obs::TraceEventType::TxCommit ||
        ev.type == obs::TraceEventType::TxAbort) {
      iv.end = ev.at;
      if (!iv.has_begin) iv.node = ev.node;
      iv.has_end = true;
    }
  }
  for (const obs::TraceEvent& ev : trace.events) {
    if (ev.type != obs::TraceEventType::TxBegin) continue;
    const Interval& iv = intervals[ev.tx];
    if (!iv.has_end || iv.end < iv.begin) continue;
    sep();
    append(out,
           "{\"name\":\"tx\",\"cat\":\"txn\",\"ph\":\"X\",\"pid\":0,"
           "\"tid\":%u,\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
           ",\"args\":{\"tx\":\"%s\"}}",
           iv.node, iv.begin, iv.end - iv.begin, tx_str(ev.tx).c_str());
  }
  // Critical-path edges nested inside the txn slice.
  for (const obs::CriticalPath& p : paths) {
    for (const obs::CriticalEdge& e : p.edges) {
      sep();
      append(out,
             "{\"name\":\"%s\",\"cat\":\"critical\",\"ph\":\"X\",\"pid\":0,"
             "\"tid\":%u,\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
             ",\"args\":{\"tx\":\"%s\",\"detail\":%" PRIu64 "}}",
             obs::to_string(e.cls), p.tx.node, e.from, e.duration(),
             tx_str(p.tx).c_str(), e.detail);
    }
  }
  // Lineage arrows. The flow binds to the enclosing txn slices, so both
  // endpoints must have known intervals containing the observation time.
  std::uint64_t flow_id = 1;
  const auto flow = [&](const char* name, const TxId& from, const TxId& to,
                        Timestamp at) {
    const auto fi = intervals.find(from);
    const auto ti = intervals.find(to);
    if (fi == intervals.end() || ti == intervals.end()) return;
    const Interval& a = fi->second;
    const Interval& b = ti->second;
    if (!a.has_begin || !a.has_end || !b.has_begin || !b.has_end) return;
    const Timestamp src = std::min(std::max(at, a.begin), a.end);
    const Timestamp dst = std::min(std::max(at, b.begin), b.end);
    sep();
    append(out,
           "{\"name\":\"%s\",\"cat\":\"lineage\",\"ph\":\"s\",\"pid\":0,"
           "\"tid\":%u,\"ts\":%" PRIu64 ",\"id\":%" PRIu64 "}",
           name, a.node, src, flow_id);
    sep();
    append(out,
           "{\"name\":\"%s\",\"cat\":\"lineage\",\"ph\":\"f\",\"bp\":\"e\","
           "\"pid\":0,\"tid\":%u,\"ts\":%" PRIu64 ",\"id\":%" PRIu64 "}",
           name, b.node, dst, flow_id);
    ++flow_id;
  };
  for (const obs::TraceEvent& ev : trace.events) {
    if (ev.type == obs::TraceEventType::ReadReady && ev.b != 0 &&
        ev.other.valid()) {
      flow("spec", ev.other, ev.tx, ev.at);
    }
    if (ev.type == obs::TraceEventType::TxAbort && ev.other.valid()) {
      flow("cascade", ev.other, ev.tx, ev.at);
    }
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 1;
  }
  std::string text;
  if (!read_input(opt.input, text)) return 1;

  obs::ParsedTrace trace;
  std::string error;
  if (!obs::parse_chrome_trace(text, trace, error)) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }

  const std::vector<obs::CriticalPath> paths =
      obs::critical_paths(trace.events);
  const std::vector<std::string> violations = obs::check_critical_paths(paths);
  const obs::PathAggregate agg = obs::aggregate(paths);
  const obs::LineageStats ls = obs::lineage(trace.events);

  // Writing the machine-readable outputs to stdout replaces the report.
  const bool quiet = opt.json_out == "-" || opt.chrome_out == "-";
  if (!quiet) {
    std::printf("trace: %zu events, %zu spans, %zu flows, %u nodes",
                trace.events.size(), trace.spans.size(), trace.flows.size(),
                trace.num_nodes);
    if (trace.dropped_events != 0 || trace.dropped_spans != 0) {
      std::printf("  (DROPPED: %llu events, %llu spans — analysis partial)",
                  static_cast<unsigned long long>(trace.dropped_events),
                  static_cast<unsigned long long>(trace.dropped_spans));
    }
    std::printf("\n\n");
    print_breakdown(agg);
    print_lineage(ls, opt.top);
  }

  int rc = 0;
  if (!opt.json_out.empty()) {
    if (!obs::write_file(opt.json_out,
                         breakdown_json(agg, ls, trace, violations.size()))) {
      rc = 1;
    } else if (opt.json_out != "-" && !quiet) {
      std::printf("\nwrote JSON to %s\n", opt.json_out.c_str());
    }
  }
  if (!opt.chrome_out.empty()) {
    if (!obs::write_file(opt.chrome_out, overlay_chrome_trace(trace, paths))) {
      rc = 1;
    } else if (opt.chrome_out != "-" && !quiet) {
      std::printf("wrote overlay trace to %s\n", opt.chrome_out.c_str());
    }
  }
  if (opt.check) {
    for (const std::string& v : violations) {
      std::fprintf(stderr, "COVERAGE VIOLATION: %s\n", v.c_str());
    }
    if (!quiet) {
      std::printf("\ncheck: %zu committed txn(s), %zu violation(s)\n",
                  paths.size(), violations.size());
    }
    if (!violations.empty()) rc = 2;
  }
  return rc;
}
