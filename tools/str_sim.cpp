// str_sim — command-line driver for the STR simulator.
//
// Runs any workload/protocol combination on a configurable cluster and
// prints (and optionally CSV-exports) the paper's metrics. Examples:
//
//   str_sim --workload synth-a --protocol str --clients 80
//   str_sim --workload tpcc-a --protocol clocksi --clients 3600 --duration 30
//   str_sim --workload rubis --protocol str --tuner --reps 3 --csv out.csv
//
// Run with --help for the full option list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <vector>

#include "harness/csv.hpp"
#include "harness/replicated.hpp"
#include "harness/report.hpp"
#include "net/fault.hpp"
#include "workload/rubis.hpp"
#include "workload/synthetic.hpp"
#include "workload/tpcc.hpp"

using namespace str;  // NOLINT

namespace {

struct Options {
  std::string workload = "synth-a";
  std::string protocol = "str";
  std::uint32_t nodes = 9;
  std::uint32_t rf = 6;
  std::uint32_t clients = 90;
  std::uint64_t seed = 42;
  std::uint32_t threads = 1;
  double duration_s = 20;
  double warmup_s = 4;
  bool tuner = false;
  unsigned reps = 1;
  std::string csv;
  std::string trace_out;
  std::string metrics_out;
  bool summary_percentiles = false;
  std::size_t trace_capacity = 0;  ///< 0 = default ring size
  bool uniform_topology = false;
  double wan_rtt_ms = 100;
  bool wire = false;
  // Real transport mode (docs/TRANSPORT.md).
  std::string transport = "des";
  int transport_port = 0;
  // Chaos mode (see docs/FAULTS.md).
  std::string fault_plan_path;
  net::FaultPlan faults;
  bool verify = false;
  double drain_s = 3;
  // Durability (see docs/DURABILITY.md).
  bool wal = false;
  std::string wal_dir;
  double fsync_ms = 2;
  std::uint32_t wal_batch = 8;
  std::uint32_t decision_quorum = 0;
  std::uint32_t replica_group = 0;
};

void usage() {
  std::puts(
      "str_sim: STR / SPSI geo-replication simulator\n"
      "  --workload W   synth-a | synth-b | tpcc-a | tpcc-b | tpcc-c | rubis\n"
      "  --protocol P   str | clocksi | ext-spec | str-no-sr | physical-sr\n"
      "  --clients N    total clients (round-robin over nodes)     [90]\n"
      "  --nodes N      cluster size                               [9]\n"
      "  --rf N         replication factor                         [6]\n"
      "  --duration S   measured seconds of virtual time           [20]\n"
      "  --warmup S     warmup seconds                             [4]\n"
      "  --seed N       deterministic seed                         [42]\n"
      "  --threads N    worker threads for region-sharded parallel\n"
      "                 simulation (docs/PERFORMANCE.md). 1 = the classic\n"
      "                 single queue, bit-identical to earlier releases;\n"
      "                 >1 shards the event queue by region. The parallel\n"
      "                 trajectory depends only on (seed, topology) — the\n"
      "                 same for 2 threads or 8                    [1]\n"
      "  --tuner        enable the self-tuning controller (threads=1 only)\n"
      "  --reps N       repetitions (mean/std across seeds)        [1]\n"
      "  --uniform MS   symmetric topology with the given WAN RTT\n"
      "  --wire         encode every message into a checksummed binary\n"
      "                 frame and decode it at delivery (wire codec mode,\n"
      "                 docs/WIRE.md); bit-identical to the default\n"
      "                 closure transport\n"
      "  --transport T  des | socketpair | tcp (docs/TRANSPORT.md). des (the\n"
      "                 default) is the deterministic simulator; socketpair\n"
      "                 and tcp run the same cluster logic over real sockets\n"
      "                 on per-node loop threads, pacing virtual time to the\n"
      "                 wall clock (implies --wire; requires --threads 1 and\n"
      "                 no fault directives)                        [des]\n"
      "  --transport-port N  tcp only: node i listens on 127.0.0.1:(N+i)\n"
      "                 instead of ephemeral ports\n"
      "  --csv PATH     append per-run metrics to a CSV file\n"
      "  --trace-out PATH    write a Chrome trace-event JSON (Perfetto /\n"
      "                      chrome://tracing loadable; first rep only;\n"
      "                      \"-\" = stdout, report moves to stderr)\n"
      "  --metrics-out PATH  write the merged metrics registry as JSON\n"
      "                      (or CSV when PATH ends in .csv; first rep only;\n"
      "                      \"-\" = stdout, report moves to stderr)\n"
      "  --summary-percentiles  add p95 to the per-phase table and print\n"
      "                      final-latency p50/p95/p99\n"
      "  --trace-capacity N  trace ring size (events and spans each; older\n"
      "                      records drop when full)\n"
      "chaos mode (docs/FAULTS.md; any fault flag enables recovery):\n"
      "  --fault-plan PATH   load a fault-plan spec file\n"
      "  --drop-prob P       per-message drop probability, every link\n"
      "  --dup-prob P        per-message duplication probability\n"
      "  --corrupt-prob P    per-message single-bit-flip probability; the\n"
      "                      receiver rejects the frame via checksum\n"
      "                      (counted as net.corrupted)\n"
      "  --partition A:B:S:E cut regions A <-> B from S to E seconds\n"
      "  --crash-node N:T[:R] crash node N at T s (restart at R s)\n"
      "  --heal S            stop drops/dups at S seconds; defaults to the\n"
      "                      end of the measurement window so the drain is\n"
      "                      a fault-free recovery period\n"
      "  --verify            record the history and run the SPSI checker\n"
      "                      (exit 2 on violations, 3 on leaked state,\n"
      "                       4 on lost client-acked commits)\n"
      "  --drain S           drain seconds after the window              [3]\n"
      "durability (docs/DURABILITY.md):\n"
      "  --wal               write-ahead log every commit decision; crashed\n"
      "                      nodes replay their logs on restart instead of\n"
      "                      keeping state by assumption\n"
      "  --wal-dir PATH      mirror each log to a file under PATH (implies\n"
      "                      --wal; PATH must exist and be writable)\n"
      "  --fsync-ms MS       modeled fsync latency                      [2]\n"
      "  --wal-batch N       group-commit batch size                    [8]\n"
      "  --torn-write P      probability a crash mid-fsync leaves a torn\n"
      "                      record at the log tail (replay truncates it)\n"
      "  --decision-quorum N replicate every commit decision across the\n"
      "                      coordinator's replica group and delay the commit\n"
      "                      point until N copies (incl. the local one) are\n"
      "                      durable; the decision then survives permanent\n"
      "                      coordinator loss (implies --wal)        [off]\n"
      "  --replica-group N   decision replica-group size; defaults to the\n"
      "                      quorum size when smaller\n");
}

/// Split "a:b:c" into its numeric fields; false on count or parse errors.
bool split_fields(const std::string& s, std::vector<double>& out,
                  std::size_t min_fields, std::size_t max_fields) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t colon = s.find(':', pos);
    const std::string field =
        s.substr(pos, colon == std::string::npos ? colon : colon - pos);
    if (field.empty()) return false;
    char* end = nullptr;
    out.push_back(std::strtod(field.c_str(), &end));
    if (end == nullptr || *end != '\0') return false;
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  return out.size() >= min_fields && out.size() <= max_fields;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Value of a value-taking flag. Reports a usage error (and returns
    // nullptr) when the flag is the last argument — every use below must
    // check before dereferencing.
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option %s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--workload") {
      if ((v = next()) == nullptr) return false;
      opt.workload = v;
    } else if (arg == "--protocol") {
      if ((v = next()) == nullptr) return false;
      opt.protocol = v;
    } else if (arg == "--clients") {
      if ((v = next()) == nullptr) return false;
      opt.clients = std::atoi(v);
    } else if (arg == "--nodes") {
      if ((v = next()) == nullptr) return false;
      opt.nodes = std::atoi(v);
    } else if (arg == "--rf") {
      if ((v = next()) == nullptr) return false;
      opt.rf = std::atoi(v);
    } else if (arg == "--duration") {
      if ((v = next()) == nullptr) return false;
      opt.duration_s = std::atof(v);
    } else if (arg == "--warmup") {
      if ((v = next()) == nullptr) return false;
      opt.warmup_s = std::atof(v);
    } else if (arg == "--seed") {
      if ((v = next()) == nullptr) return false;
      opt.seed = std::atoll(v);
    } else if (arg == "--threads") {
      if ((v = next()) == nullptr) return false;
      const int n = std::atoi(v);
      if (n < 1) {
        std::fprintf(stderr, "--threads wants a positive count\n");
        return false;
      }
      opt.threads = static_cast<std::uint32_t>(n);
    } else if (arg == "--tuner") {
      opt.tuner = true;
    } else if (arg == "--reps") {
      if ((v = next()) == nullptr) return false;
      opt.reps = std::atoi(v);
    } else if (arg == "--csv") {
      if ((v = next()) == nullptr) return false;
      opt.csv = v;
    } else if (arg == "--trace-out") {
      if ((v = next()) == nullptr) return false;
      opt.trace_out = v;
    } else if (arg == "--metrics-out") {
      if ((v = next()) == nullptr) return false;
      opt.metrics_out = v;
    } else if (arg == "--summary-percentiles") {
      opt.summary_percentiles = true;
    } else if (arg == "--trace-capacity") {
      if ((v = next()) == nullptr) return false;
      opt.trace_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--uniform") {
      if ((v = next()) == nullptr) return false;
      opt.uniform_topology = true;
      opt.wan_rtt_ms = std::atof(v);
    } else if (arg == "--fault-plan") {
      if ((v = next()) == nullptr) return false;
      opt.fault_plan_path = v;
      std::string error;
      if (!net::FaultPlan::load(opt.fault_plan_path, opt.faults, error)) {
        std::fprintf(stderr, "--fault-plan %s: %s\n", v, error.c_str());
        return false;
      }
    } else if (arg == "--drop-prob") {
      if ((v = next()) == nullptr) return false;
      opt.faults.link.drop_prob = std::atof(v);
    } else if (arg == "--dup-prob") {
      if ((v = next()) == nullptr) return false;
      opt.faults.link.dup_prob = std::atof(v);
    } else if (arg == "--corrupt-prob") {
      if ((v = next()) == nullptr) return false;
      opt.faults.link.corrupt_prob = std::atof(v);
    } else if (arg == "--wire") {
      opt.wire = true;
    } else if (arg == "--transport") {
      if ((v = next()) == nullptr) return false;
      opt.transport = v;
    } else if (arg == "--transport-port") {
      if ((v = next()) == nullptr) return false;
      const int n = std::atoi(v);
      if (n < 1 || n > 65535) {
        std::fprintf(stderr, "--transport-port wants a port in [1,65535]\n");
        return false;
      }
      opt.transport_port = n;
    } else if (arg == "--partition") {
      if ((v = next()) == nullptr) return false;
      std::vector<double> f;
      if (!split_fields(v, f, 4, 4)) {
        std::fprintf(stderr, "--partition wants A:B:START:END, got %s\n", v);
        return false;
      }
      opt.faults.add_partition(static_cast<RegionId>(f[0]),
                               static_cast<RegionId>(f[1]),
                               static_cast<Timestamp>(f[2] * 1e6),
                               static_cast<Timestamp>(f[3] * 1e6));
    } else if (arg == "--crash-node") {
      if ((v = next()) == nullptr) return false;
      std::vector<double> f;
      if (!split_fields(v, f, 2, 3)) {
        std::fprintf(stderr, "--crash-node wants NODE:AT[:RESTART], got %s\n",
                     v);
        return false;
      }
      // Same ordering rule the fault-plan parser enforces: a restart that
      // does not strictly follow its crash would trip an assertion deep in
      // cluster construction instead of a usage error here.
      if (f.size() == 3 && f[2] <= f[1]) {
        std::fprintf(stderr,
                     "--crash-node %s: RESTART must be after the crash time\n",
                     v);
        return false;
      }
      opt.faults.add_crash(static_cast<NodeId>(f[0]),
                           static_cast<Timestamp>(f[1] * 1e6),
                           f.size() == 3
                               ? static_cast<Timestamp>(f[2] * 1e6)
                               : kTsInfinity);
    } else if (arg == "--heal") {
      if ((v = next()) == nullptr) return false;
      opt.faults.link.heal_at = static_cast<Timestamp>(std::atof(v) * 1e6);
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--drain") {
      if ((v = next()) == nullptr) return false;
      opt.drain_s = std::atof(v);
    } else if (arg == "--wal") {
      opt.wal = true;
    } else if (arg == "--wal-dir") {
      if ((v = next()) == nullptr) return false;
      opt.wal_dir = v;
      opt.wal = true;
    } else if (arg == "--fsync-ms") {
      if ((v = next()) == nullptr) return false;
      opt.fsync_ms = std::atof(v);
      if (opt.fsync_ms < 0) {
        std::fprintf(stderr, "--fsync-ms wants a non-negative value\n");
        return false;
      }
    } else if (arg == "--wal-batch") {
      if ((v = next()) == nullptr) return false;
      const int n = std::atoi(v);
      if (n < 1) {
        std::fprintf(stderr, "--wal-batch wants a positive count\n");
        return false;
      }
      opt.wal_batch = static_cast<std::uint32_t>(n);
    } else if (arg == "--decision-quorum") {
      if ((v = next()) == nullptr) return false;
      const int n = std::atoi(v);
      if (n < 1) {
        std::fprintf(stderr, "--decision-quorum wants a positive count\n");
        return false;
      }
      opt.decision_quorum = static_cast<std::uint32_t>(n);
      opt.wal = true;
    } else if (arg == "--replica-group") {
      if ((v = next()) == nullptr) return false;
      const int n = std::atoi(v);
      if (n < 1) {
        std::fprintf(stderr, "--replica-group wants a positive count\n");
        return false;
      }
      opt.replica_group = static_cast<std::uint32_t>(n);
    } else if (arg == "--torn-write") {
      if ((v = next()) == nullptr) return false;
      const double p = std::atof(v);
      if (p < 0.0 || p > 1.0) {
        std::fprintf(stderr, "--torn-write wants a probability in [0,1]\n");
        return false;
      }
      opt.faults.storage.torn_write_prob = p;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

protocol::ProtocolConfig protocol_config(const std::string& name, bool& ok) {
  ok = true;
  if (name == "str") return protocol::ProtocolConfig::str();
  if (name == "clocksi") return protocol::ProtocolConfig::clocksi_rep();
  if (name == "ext-spec") return protocol::ProtocolConfig::ext_spec();
  if (name == "str-no-sr") {
    auto c = protocol::ProtocolConfig::str();
    c.speculative_reads = false;
    return c;
  }
  if (name == "physical-sr") {
    protocol::ProtocolConfig c;
    c.speculative_reads = true;
    c.precise_clocks = false;
    return c;
  }
  ok = false;
  return {};
}

harness::WorkloadFactory workload_factory(const std::string& name, bool& ok) {
  ok = true;
  if (name == "synth-a" || name == "synth-b") {
    auto wcfg = name == "synth-a" ? workload::SyntheticConfig::synth_a()
                                  : workload::SyntheticConfig::synth_b();
    return [wcfg](protocol::Cluster& c) {
      return std::make_unique<workload::SyntheticWorkload>(c, wcfg);
    };
  }
  if (name == "tpcc-a" || name == "tpcc-b" || name == "tpcc-c") {
    auto wcfg = name == "tpcc-a"   ? workload::TpccConfig::mix_a()
                : name == "tpcc-b" ? workload::TpccConfig::mix_b()
                                   : workload::TpccConfig::mix_c();
    return [wcfg](protocol::Cluster& c) {
      return std::make_unique<workload::TpccWorkload>(c, wcfg);
    };
  }
  if (name == "rubis") {
    workload::RubisConfig wcfg;
    return [wcfg](protocol::Cluster& c) {
      return std::make_unique<workload::RubisWorkload>(c, wcfg);
    };
  }
  ok = false;
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 1;
  }
  // Validate --wal-dir before spending minutes of simulation on a run whose
  // logs cannot be written (the same fail-fast contract as --trace-out).
  if (!opt.wal_dir.empty()) {
    const std::string probe = opt.wal_dir + "/.wal_probe";
    std::FILE* f = std::fopen(probe.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "--wal-dir %s: not a writable directory\n",
                   opt.wal_dir.c_str());
      return 1;
    }
    std::fclose(f);
    std::remove(probe.c_str());
  }
  // Validate --transport combinations up front, like --wal-dir: a real
  // transport spins up threads and sockets, so misconfigurations must die
  // as usage errors before any of that exists.
  net::TransportKind tkind = net::TransportKind::kDes;
  if (!net::parse_transport(opt.transport, tkind)) {
    std::fprintf(stderr, "--transport wants des | socketpair | tcp, got %s\n",
                 opt.transport.c_str());
    return 1;
  }
  if (tkind != net::TransportKind::kDes) {
    if (opt.threads > 1) {
      std::fprintf(stderr,
                   "--transport %s requires --threads 1 (the realtime driver "
                   "runs the protocol single-threaded; the loop threads are "
                   "the transport's own)\n",
                   opt.transport.c_str());
      return 1;
    }
    if (!opt.faults.empty()) {
      std::fprintf(stderr,
                   "--transport %s is incompatible with fault directives "
                   "(--drop-prob, --partition, --crash-node, ...): the DES "
                   "owns deterministic fault injection; real transports get "
                   "their faults from real sockets\n",
                   opt.transport.c_str());
      return 1;
    }
  }
  if (opt.transport_port != 0 && tkind != net::TransportKind::kTcp) {
    std::fprintf(stderr, "--transport-port requires --transport tcp\n");
    return 1;
  }
  bool ok = false;
  harness::ExperimentConfig cfg;
  cfg.cluster.num_nodes = opt.nodes;
  cfg.cluster.replication_factor = std::min(opt.rf, opt.nodes);
  cfg.cluster.topology =
      opt.uniform_topology
          ? net::Topology::symmetric(opt.nodes,
                                     msec(static_cast<std::uint64_t>(
                                         opt.wan_rtt_ms)))
          : (opt.nodes == 9 ? net::Topology::ec2_nine_regions()
                            : net::Topology::symmetric(opt.nodes, msec(100)));
  cfg.cluster.protocol = protocol_config(opt.protocol, ok);
  if (!ok) {
    std::fprintf(stderr, "unknown protocol: %s\n", opt.protocol.c_str());
    return 1;
  }
  cfg.cluster.seed = opt.seed;
  cfg.cluster.threads = opt.threads;
  // The self-tuner samples the raw commit meter in arrival order, which is
  // wall-clock-dependent across worker threads; its decisions would not be
  // reproducible. Fail as a usage error, not an assertion mid-run.
  if (opt.tuner && opt.threads > 1) {
    std::fprintf(stderr, "--tuner requires --threads 1\n");
    return 1;
  }
  cfg.cluster.faults = opt.faults;
  cfg.cluster.wire_codec = opt.wire;
  cfg.cluster.transport = tkind;
  cfg.cluster.transport_opts.base_port =
      static_cast<std::uint16_t>(opt.transport_port);
  if (opt.wal) {
    auto& d = cfg.cluster.protocol.durability;
    d.wal_enabled = true;
    d.wal_dir = opt.wal_dir;
    d.fsync_latency = static_cast<Timestamp>(opt.fsync_ms * 1e3);
    d.group_commit_batch = opt.wal_batch;
    d.decision_quorum = opt.decision_quorum;
    d.replica_group = opt.replica_group;
    if (d.decision_quorum > opt.nodes) {
      std::fprintf(stderr, "--decision-quorum %u exceeds the cluster size\n",
                   d.decision_quorum);
      return 1;
    }
  }
  if (opt.replica_group != 0 && opt.decision_quorum == 0) {
    std::fprintf(stderr, "--replica-group requires --decision-quorum\n");
    return 1;
  }
  cfg.total_clients = opt.clients;
  cfg.warmup = static_cast<Timestamp>(opt.warmup_s * 1e6);
  cfg.duration = static_cast<Timestamp>(opt.duration_s * 1e6);
  cfg.drain = static_cast<Timestamp>(opt.drain_s * 1e6);
  cfg.self_tuning = opt.tuner;
  cfg.trace_out = opt.trace_out;
  cfg.metrics_out = opt.metrics_out;
  if (opt.trace_capacity != 0) cfg.trace_capacity = opt.trace_capacity;
  cfg.verify = opt.verify;

  auto factory = workload_factory(opt.workload, ok);
  if (!ok) {
    std::fprintf(stderr, "unknown workload: %s\n", opt.workload.c_str());
    return 1;
  }

  // "-" sends an export to stdout; the human-readable report then moves to
  // stderr so piping into trace_analyze (or jq) sees pure JSON.
  std::FILE* rpt =
      opt.trace_out == "-" || opt.metrics_out == "-" ? stderr : stdout;
  const std::string threads_note =
      opt.threads > 1 ? " threads=" + std::to_string(opt.threads) : "";
  const std::string transport_note =
      tkind != net::TransportKind::kDes
          ? " transport=" + std::string(net::to_string(tkind))
          : "";
  std::fprintf(
      rpt,
      "workload=%s protocol=%s nodes=%u rf=%u clients=%u reps=%u%s%s%s%s\n",
      opt.workload.c_str(), opt.protocol.c_str(), opt.nodes,
      cfg.cluster.replication_factor, opt.clients, opt.reps,
      opt.tuner ? " tuner=on" : "", opt.wire ? " wire=on" : "",
      threads_note.c_str(), transport_note.c_str());
  if (opt.wal) {
    const std::string quorum_note =
        opt.decision_quorum != 0
            ? " quorum=" + std::to_string(opt.decision_quorum) + " group=" +
                  std::to_string(
                      cfg.cluster.protocol.durability.group_size())
            : "";
    std::fprintf(rpt, "wal: fsync=%.1fms batch=%u%s%s%s\n", opt.fsync_ms,
                 opt.wal_batch,
                 opt.wal_dir.empty() ? "" : (" dir=" + opt.wal_dir).c_str(),
                 quorum_note.c_str(),
                 opt.faults.storage.any() ? " (torn-write faults on)" : "");
  }
  if (!opt.faults.empty()) {
    std::fprintf(rpt, "faults: %s%s\n", opt.faults.describe().c_str(),
                 opt.verify ? " (verify on)" : "");
  }

  harness::ReplicatedResult agg;
  try {
    agg = harness::run_replicated(cfg, factory, opt.reps);
  } catch (const std::exception& e) {
    // Real transports can fail at the OS level (a busy --transport-port,
    // fd exhaustion); report it as a run failure, not a crash.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
  std::fprintf(
      rpt,
      "throughput    %10.1f tps   (std %.1f, cv %.1f%%)\n"
      "final latency %10.1f ms\n"
      "spec latency  %10.1f ms\n"
      "abort rate    %10.1f %%\n"
      "misspec rate  %10.1f %%  ext-misspec %0.1f %%\n",
      agg.throughput.mean(), agg.throughput.stddev(),
      agg.throughput_cv() * 100.0, agg.final_latency_mean.mean() / 1000.0,
      agg.speculative_latency_mean.mean() / 1000.0,
      agg.abort_rate.mean() * 100.0, agg.misspeculation_rate.mean() * 100.0,
      agg.external_misspeculation_rate.mean() * 100.0);
  if (opt.summary_percentiles && !agg.runs.empty()) {
    const auto& res = agg.runs.front();
    std::fprintf(rpt, "final latency percentiles %.1f / %.1f / %.1f ms (p50/p95/p99)\n",
                 static_cast<double>(res.final_latency_p50) / 1000.0,
                 static_cast<double>(res.final_latency_p95) / 1000.0,
                 static_cast<double>(res.final_latency_p99) / 1000.0);
  }
  if (opt.tuner && !agg.runs.empty()) {
    std::fprintf(rpt, "tuner: speculation %s\n",
                 agg.runs.front().speculation_enabled_at_end ? "on" : "off");
  }
  if (!agg.runs.empty()) {
    std::fputc('\n', rpt);
    harness::print_phase_table(opt.workload + " / " + opt.protocol,
                               agg.runs.front().phases, rpt,
                               opt.summary_percentiles);
  }
  const bool exports_ok = agg.runs.empty() || agg.runs.front().exports_ok;
  if (!exports_ok) {
    std::fprintf(stderr, "failed to write trace/metrics output\n");
    return 1;
  }
  if (!opt.trace_out.empty() && opt.trace_out != "-") {
    std::fprintf(rpt, "wrote trace to %s\n", opt.trace_out.c_str());
  }
  if (!opt.metrics_out.empty() && opt.metrics_out != "-") {
    std::fprintf(rpt, "wrote metrics to %s\n", opt.metrics_out.c_str());
  }
  if (!agg.runs.empty() && agg.runs.front().trace_dropped != 0) {
    std::fprintf(stderr,
                 "WARNING: trace.dropped=%llu — raise --trace-capacity or "
                 "shorten the run for complete causal analysis\n",
                 static_cast<unsigned long long>(agg.runs.front().trace_dropped));
  }

  if (!opt.csv.empty()) {
    harness::CsvWriter csv(opt.csv,
                           {"workload", "protocol", "clients", "seed",
                            "throughput_tps", "abort_rate", "misspec_rate",
                            "final_latency_ms", "spec_latency_ms"});
    for (std::size_t r = 0; r < agg.runs.size(); ++r) {
      const auto& res = agg.runs[r];
      csv.write_row({opt.workload, opt.protocol, std::to_string(opt.clients),
                     std::to_string(opt.seed + 7919 * r),
                     std::to_string(res.throughput),
                     std::to_string(res.abort_rate),
                     std::to_string(res.misspeculation_rate),
                     std::to_string(res.final_latency_mean / 1000.0),
                     std::to_string(res.speculative_latency_mean / 1000.0)});
    }
    std::fprintf(rpt, "wrote %zu rows to %s\n", agg.runs.size(),
                 opt.csv.c_str());
  }

  // Chaos-mode verdicts: safety (the SPSI checker) and cleanup (no state
  // leaked past the drain) must both hold under every fault plan.
  int rc = 0;
  if ((!opt.faults.empty() || opt.verify) && !agg.runs.empty()) {
    std::uint64_t violations = 0, leaks = 0;
    for (const auto& res : agg.runs) {
      violations += res.violations.size();
      if (!res.quiesce.clean()) ++leaks;
    }
    const auto& first = agg.runs.front();
    // Transport-level retransmits are a different animal from protocol-level
    // rpc_retries: surface both side by side so a chaos verdict can tell
    // socket recovery from timeout machinery.
    const std::string transport_verdict =
        tkind != net::TransportKind::kDes
            ? " transport_resent=" + std::to_string(first.transport_resent) +
                  " reconnects=" + std::to_string(first.transport_reconnects)
            : "";
    std::fprintf(
        rpt,
        "\nfaults: dropped=%llu duplicated=%llu corrupted=%llu "
        "inversions=%llu\n"
        "recovery: rpc_timeouts=%llu rpc_retries=%llu orphan_aborts=%llu"
        "%s%s\n"
        "quiesce: live=%zu parked=%zu locks=%zu orphans=%zu in_doubt=%zu "
        "down=%zu (perm=%zu)\n",
        static_cast<unsigned long long>(first.net_dropped),
        static_cast<unsigned long long>(first.net_duplicated),
        static_cast<unsigned long long>(first.net_corrupted),
        static_cast<unsigned long long>(first.net_inversions),
        static_cast<unsigned long long>(first.rpc_timeouts),
        static_cast<unsigned long long>(first.rpc_retries),
        static_cast<unsigned long long>(first.orphan_aborts),
        opt.decision_quorum != 0
            ? (" lost_commits=" + std::to_string(first.lost_commits)).c_str()
            : "",
        transport_verdict.c_str(),
        first.quiesce.live_txns, first.quiesce.parked_reads,
        first.quiesce.uncommitted_txns, first.quiesce.orphans,
        first.quiesce.in_doubt, first.quiesce.down_nodes,
        first.quiesce.permanently_down);
    if (first.lost_commits != 0) {
      std::fprintf(stderr,
                   "LOST COMMITS: %llu client-acked commit(s) were aborted "
                   "by recovery\n",
                   static_cast<unsigned long long>(first.lost_commits));
    }
    if (opt.verify) {
      std::fprintf(rpt, "spsi: %llu violation(s)\n",
                   static_cast<unsigned long long>(violations));
      for (const auto& res : agg.runs) {
        for (const std::string& viol : res.violations) {
          std::fprintf(stderr, "SPSI VIOLATION: %s\n", viol.c_str());
        }
      }
    }
    if (leaks != 0) {
      std::fprintf(stderr, "LEAK: %llu run(s) did not quiesce clean\n",
                   static_cast<unsigned long long>(leaks));
    }
    if (violations != 0) {
      rc = 2;
    } else if (leaks != 0) {
      rc = 3;
    } else if (opt.verify && first.lost_commits != 0) {
      // A lost acked commit is a durability-contract violation even when
      // the surviving history is SPSI-clean.
      rc = 4;
    }
  }
  return rc;
}
