// str_sim — command-line driver for the STR simulator.
//
// Runs any workload/protocol combination on a configurable cluster and
// prints (and optionally CSV-exports) the paper's metrics. Examples:
//
//   str_sim --workload synth-a --protocol str --clients 80
//   str_sim --workload tpcc-a --protocol clocksi --clients 3600 --duration 30
//   str_sim --workload rubis --protocol str --tuner --reps 3 --csv out.csv
//
// Run with --help for the full option list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "harness/csv.hpp"
#include "harness/replicated.hpp"
#include "harness/report.hpp"
#include "workload/rubis.hpp"
#include "workload/synthetic.hpp"
#include "workload/tpcc.hpp"

using namespace str;  // NOLINT

namespace {

struct Options {
  std::string workload = "synth-a";
  std::string protocol = "str";
  std::uint32_t nodes = 9;
  std::uint32_t rf = 6;
  std::uint32_t clients = 90;
  std::uint64_t seed = 42;
  double duration_s = 20;
  double warmup_s = 4;
  bool tuner = false;
  unsigned reps = 1;
  std::string csv;
  std::string trace_out;
  std::string metrics_out;
  bool uniform_topology = false;
  double wan_rtt_ms = 100;
};

void usage() {
  std::puts(
      "str_sim: STR / SPSI geo-replication simulator\n"
      "  --workload W   synth-a | synth-b | tpcc-a | tpcc-b | tpcc-c | rubis\n"
      "  --protocol P   str | clocksi | ext-spec | str-no-sr | physical-sr\n"
      "  --clients N    total clients (round-robin over nodes)     [90]\n"
      "  --nodes N      cluster size                               [9]\n"
      "  --rf N         replication factor                         [6]\n"
      "  --duration S   measured seconds of virtual time           [20]\n"
      "  --warmup S     warmup seconds                             [4]\n"
      "  --seed N       deterministic seed                         [42]\n"
      "  --tuner        enable the self-tuning controller\n"
      "  --reps N       repetitions (mean/std across seeds)        [1]\n"
      "  --uniform MS   symmetric topology with the given WAN RTT\n"
      "  --csv PATH     append per-run metrics to a CSV file\n"
      "  --trace-out PATH    write a Chrome trace-event JSON (Perfetto /\n"
      "                      chrome://tracing loadable; first rep only)\n"
      "  --metrics-out PATH  write the merged metrics registry as JSON\n"
      "                      (or CSV when PATH ends in .csv; first rep only)\n");
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Value of a value-taking flag. Reports a usage error (and returns
    // nullptr) when the flag is the last argument — every use below must
    // check before dereferencing.
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option %s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--workload") {
      if ((v = next()) == nullptr) return false;
      opt.workload = v;
    } else if (arg == "--protocol") {
      if ((v = next()) == nullptr) return false;
      opt.protocol = v;
    } else if (arg == "--clients") {
      if ((v = next()) == nullptr) return false;
      opt.clients = std::atoi(v);
    } else if (arg == "--nodes") {
      if ((v = next()) == nullptr) return false;
      opt.nodes = std::atoi(v);
    } else if (arg == "--rf") {
      if ((v = next()) == nullptr) return false;
      opt.rf = std::atoi(v);
    } else if (arg == "--duration") {
      if ((v = next()) == nullptr) return false;
      opt.duration_s = std::atof(v);
    } else if (arg == "--warmup") {
      if ((v = next()) == nullptr) return false;
      opt.warmup_s = std::atof(v);
    } else if (arg == "--seed") {
      if ((v = next()) == nullptr) return false;
      opt.seed = std::atoll(v);
    } else if (arg == "--tuner") {
      opt.tuner = true;
    } else if (arg == "--reps") {
      if ((v = next()) == nullptr) return false;
      opt.reps = std::atoi(v);
    } else if (arg == "--csv") {
      if ((v = next()) == nullptr) return false;
      opt.csv = v;
    } else if (arg == "--trace-out") {
      if ((v = next()) == nullptr) return false;
      opt.trace_out = v;
    } else if (arg == "--metrics-out") {
      if ((v = next()) == nullptr) return false;
      opt.metrics_out = v;
    } else if (arg == "--uniform") {
      if ((v = next()) == nullptr) return false;
      opt.uniform_topology = true;
      opt.wan_rtt_ms = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

protocol::ProtocolConfig protocol_config(const std::string& name, bool& ok) {
  ok = true;
  if (name == "str") return protocol::ProtocolConfig::str();
  if (name == "clocksi") return protocol::ProtocolConfig::clocksi_rep();
  if (name == "ext-spec") return protocol::ProtocolConfig::ext_spec();
  if (name == "str-no-sr") {
    auto c = protocol::ProtocolConfig::str();
    c.speculative_reads = false;
    return c;
  }
  if (name == "physical-sr") {
    protocol::ProtocolConfig c;
    c.speculative_reads = true;
    c.precise_clocks = false;
    return c;
  }
  ok = false;
  return {};
}

harness::WorkloadFactory workload_factory(const std::string& name, bool& ok) {
  ok = true;
  if (name == "synth-a" || name == "synth-b") {
    auto wcfg = name == "synth-a" ? workload::SyntheticConfig::synth_a()
                                  : workload::SyntheticConfig::synth_b();
    return [wcfg](protocol::Cluster& c) {
      return std::make_unique<workload::SyntheticWorkload>(c, wcfg);
    };
  }
  if (name == "tpcc-a" || name == "tpcc-b" || name == "tpcc-c") {
    auto wcfg = name == "tpcc-a"   ? workload::TpccConfig::mix_a()
                : name == "tpcc-b" ? workload::TpccConfig::mix_b()
                                   : workload::TpccConfig::mix_c();
    return [wcfg](protocol::Cluster& c) {
      return std::make_unique<workload::TpccWorkload>(c, wcfg);
    };
  }
  if (name == "rubis") {
    workload::RubisConfig wcfg;
    return [wcfg](protocol::Cluster& c) {
      return std::make_unique<workload::RubisWorkload>(c, wcfg);
    };
  }
  ok = false;
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 1;
  }
  bool ok = false;
  harness::ExperimentConfig cfg;
  cfg.cluster.num_nodes = opt.nodes;
  cfg.cluster.replication_factor = std::min(opt.rf, opt.nodes);
  cfg.cluster.topology =
      opt.uniform_topology
          ? net::Topology::symmetric(opt.nodes,
                                     msec(static_cast<std::uint64_t>(
                                         opt.wan_rtt_ms)))
          : (opt.nodes == 9 ? net::Topology::ec2_nine_regions()
                            : net::Topology::symmetric(opt.nodes, msec(100)));
  cfg.cluster.protocol = protocol_config(opt.protocol, ok);
  if (!ok) {
    std::fprintf(stderr, "unknown protocol: %s\n", opt.protocol.c_str());
    return 1;
  }
  cfg.cluster.seed = opt.seed;
  cfg.total_clients = opt.clients;
  cfg.warmup = static_cast<Timestamp>(opt.warmup_s * 1e6);
  cfg.duration = static_cast<Timestamp>(opt.duration_s * 1e6);
  cfg.drain = sec(3);
  cfg.self_tuning = opt.tuner;
  cfg.trace_out = opt.trace_out;
  cfg.metrics_out = opt.metrics_out;

  auto factory = workload_factory(opt.workload, ok);
  if (!ok) {
    std::fprintf(stderr, "unknown workload: %s\n", opt.workload.c_str());
    return 1;
  }

  std::printf("workload=%s protocol=%s nodes=%u rf=%u clients=%u reps=%u%s\n",
              opt.workload.c_str(), opt.protocol.c_str(), opt.nodes,
              cfg.cluster.replication_factor, opt.clients, opt.reps,
              opt.tuner ? " tuner=on" : "");

  const auto agg = harness::run_replicated(cfg, factory, opt.reps);
  std::printf(
      "throughput    %10.1f tps   (std %.1f, cv %.1f%%)\n"
      "final latency %10.1f ms\n"
      "spec latency  %10.1f ms\n"
      "abort rate    %10.1f %%\n"
      "misspec rate  %10.1f %%  ext-misspec %0.1f %%\n",
      agg.throughput.mean(), agg.throughput.stddev(),
      agg.throughput_cv() * 100.0, agg.final_latency_mean.mean() / 1000.0,
      agg.speculative_latency_mean.mean() / 1000.0,
      agg.abort_rate.mean() * 100.0, agg.misspeculation_rate.mean() * 100.0,
      agg.external_misspeculation_rate.mean() * 100.0);
  if (opt.tuner && !agg.runs.empty()) {
    std::printf("tuner: speculation %s\n",
                agg.runs.front().speculation_enabled_at_end ? "on" : "off");
  }
  if (!agg.runs.empty()) {
    std::putchar('\n');
    harness::print_phase_table(opt.workload + " / " + opt.protocol,
                               agg.runs.front().phases);
  }
  const bool exports_ok = agg.runs.empty() || agg.runs.front().exports_ok;
  if (!exports_ok) {
    std::fprintf(stderr, "failed to write trace/metrics output\n");
    return 1;
  }
  if (!opt.trace_out.empty()) {
    std::printf("wrote trace to %s\n", opt.trace_out.c_str());
  }
  if (!opt.metrics_out.empty()) {
    std::printf("wrote metrics to %s\n", opt.metrics_out.c_str());
  }

  if (!opt.csv.empty()) {
    harness::CsvWriter csv(opt.csv,
                           {"workload", "protocol", "clients", "seed",
                            "throughput_tps", "abort_rate", "misspec_rate",
                            "final_latency_ms", "spec_latency_ms"});
    for (std::size_t r = 0; r < agg.runs.size(); ++r) {
      const auto& res = agg.runs[r];
      csv.write_row({opt.workload, opt.protocol, std::to_string(opt.clients),
                     std::to_string(opt.seed + 7919 * r),
                     std::to_string(res.throughput),
                     std::to_string(res.abort_rate),
                     std::to_string(res.misspeculation_rate),
                     std::to_string(res.final_latency_mean / 1000.0),
                     std::to_string(res.speculative_latency_mean / 1000.0)});
    }
    std::printf("wrote %zu rows to %s\n", agg.runs.size(), opt.csv.c_str());
  }
  return 0;
}
