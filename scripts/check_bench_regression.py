#!/usr/bin/env python3
"""Gate bench_core_speed results against the committed baseline.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.20]

Two metrics are gated (see docs/PERFORMANCE.md for the schema):

  events_per_sec    lower is a regression (wall-clock rate: noisy across
                    machines, which is why the default gate is a generous
                    20% — it catches "accidentally quadratic", not 2%).
  allocs_per_event  higher is a regression (near machine-independent: the
                    allocation count is a property of the code path, so
                    this is the sharp edge of the gate).

When the two runs share seed and virtual duration, the deterministic
counters (events, commits, peak_versions_per_key) must match exactly —
any drift there is a behaviour change, not a performance change, and the
golden-determinism test suite is the place to account for it.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "core_speed":
        sys.exit(f"{path}: not a bench_core_speed result")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed relative regression (default 0.20)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    thr = args.threshold
    failures = []

    # Schema v2 records the worker-thread count; a threads=1 baseline must
    # never be compared against a threads=4 run (or vice versa) — the wall
    # rates are different populations and the gate would be meaningless.
    bt, ft = base.get("threads", 1), fresh.get("threads", 1)
    if bt != ft:
        sys.exit(f"thread-count mismatch: baseline ran with threads={bt}, "
                 f"fresh with threads={ft}; compare like against like "
                 f"(BENCH_CORE.json gates threads=1, BENCH_PARALLEL.json "
                 f"gates threads=4)")

    def rate(name, lower_is_worse):
        b, f = base[name], fresh[name]
        delta = (f - b) / b if b else 0.0
        worse = delta < -thr if lower_is_worse else delta > thr
        mark = "FAIL" if worse else "ok"
        print(f"  {name:<22} baseline {b:>12.2f}  fresh {f:>12.2f}  "
              f"{delta:+7.1%}  {mark}")
        if worse:
            failures.append(name)

    print(f"bench-core regression gate (threshold {thr:.0%}):")
    rate("events_per_sec", lower_is_worse=True)
    rate("allocs_per_event", lower_is_worse=False)

    same_run = (base["seed"] == fresh["seed"]
                and base["virtual_duration_s"] == fresh["virtual_duration_s"])
    if same_run:
        for name in ("events", "commits", "peak_versions_per_key"):
            b, f = base[name], fresh[name]
            mark = "ok" if b == f else "FAIL"
            print(f"  {name:<22} baseline {b:>12}  fresh {f:>12}  "
                  f"deterministic  {mark}")
            if b != f:
                failures.append(name)
    else:
        print("  (seed/duration differ from baseline: skipping the "
              "deterministic-counter comparison)")

    if failures:
        print(f"REGRESSION: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("all within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
