#!/usr/bin/env python3
"""Plot CSV output produced by tools/str_sim (and sweeps built on it).

Usage:
    # collect data
    for p in clocksi ext-spec str; do
      for c in 10 40 160 320; do
        ./build/tools/str_sim --workload synth-a --protocol $p \
            --clients $c --csv synth_a.csv
      done
    done
    # plot
    scripts/plot_results.py synth_a.csv -o synth_a.png

Produces the three panels of the paper's figures (throughput, final
latency, abort rate) against the client count, one series per protocol.
Requires matplotlib; degrades to a text summary without it.
"""

import argparse
import csv
import sys
from collections import defaultdict


def load(path):
    rows = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            rows.append(
                {
                    "workload": row["workload"],
                    "protocol": row["protocol"],
                    "clients": int(row["clients"]),
                    "throughput": float(row["throughput_tps"]),
                    "abort_rate": float(row["abort_rate"]),
                    "latency_ms": float(row["final_latency_ms"]),
                }
            )
    return rows


def series(rows, metric):
    """protocol -> sorted [(clients, mean metric)]."""
    acc = defaultdict(lambda: defaultdict(list))
    for r in rows:
        acc[r["protocol"]][r["clients"]].append(r[metric])
    out = {}
    for proto, per_clients in acc.items():
        out[proto] = sorted(
            (c, sum(v) / len(v)) for c, v in per_clients.items()
        )
    return out


def text_summary(rows):
    for metric in ("throughput", "latency_ms", "abort_rate"):
        print(f"== {metric} ==")
        for proto, pts in sorted(series(rows, metric).items()):
            line = "  ".join(f"{c}:{v:.1f}" for c, v in pts)
            print(f"  {proto:12s} {line}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("csv", help="CSV produced by str_sim --csv")
    ap.add_argument("-o", "--output", help="output image (PNG/PDF)")
    args = ap.parse_args()

    rows = load(args.csv)
    if not rows:
        sys.exit("no data rows in " + args.csv)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary instead:\n")
        text_summary(rows)
        return

    fig, axes = plt.subplots(3, 1, figsize=(7, 10), sharex=True)
    panels = [
        ("throughput", "throughput (txn/s)", False),
        ("latency_ms", "final latency (ms)", True),
        ("abort_rate", "abort rate", False),
    ]
    for ax, (metric, label, logy) in zip(axes, panels):
        for proto, pts in sorted(series(rows, metric).items()):
            xs, ys = zip(*pts)
            ax.plot(xs, ys, marker="o", label=proto)
        ax.set_ylabel(label)
        ax.set_xscale("log")
        if logy:
            ax.set_yscale("log")
        ax.grid(True, alpha=0.3)
    axes[0].legend()
    axes[0].set_title(rows[0]["workload"])
    axes[-1].set_xlabel("clients")
    fig.tight_layout()
    out = args.output or (args.csv.rsplit(".", 1)[0] + ".png")
    fig.savefig(out, dpi=150)
    print("wrote", out)


if __name__ == "__main__":
    main()
