// Chaos demo: a two-region STR deployment rides out a WAN partition.
//
// Clients in both regions run read-modify-write transactions continuously
// while the inter-region link is cut for four seconds in the middle of the
// run. The protocol's recovery machinery (request timeouts, bounded
// retries, orphan probing — docs/FAULTS.md) keeps every transaction
// terminating and the store consistent; this program prints a per-phase
// table showing what that costs: final-commit latency and abort rate
// before the partition, during it, and after it heals.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "protocol/cluster.hpp"
#include "sim/coro.hpp"

using namespace str;  // NOLINT

namespace {

constexpr Timestamp kPartitionStart = sec(2);
constexpr Timestamp kPartitionEnd = sec(6);
constexpr Timestamp kRunEnd = sec(10);
constexpr std::uint32_t kKeysPerNode = 32;

enum Phase { kBefore = 0, kDuring = 1, kHealed = 2, kNumPhases = 3 };

const char* phase_name(int p) {
  switch (p) {
    case kBefore: return "before";
    case kDuring: return "partition";
    default: return "healed";
  }
}

Phase phase_of(Timestamp t) {
  if (t < kPartitionStart) return kBefore;
  if (t < kPartitionEnd) return kDuring;
  return kHealed;
}

struct PhaseStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::vector<Timestamp> latencies;  // begin -> final outcome, committed only
};

struct ClientState {
  PhaseStats phases[kNumPhases];
  bool stopped = false;
};

/// One client: read a local and a remote key, bump the local one, commit.
/// Transactions are bucketed by the phase in which they *started*.
sim::Fiber client_loop(protocol::Cluster& cluster, NodeId home,
                       std::uint64_t seed, ClientState& state) {
  auto& coord = cluster.node(home).coordinator();
  auto& sched = cluster.scheduler();
  Rng rng(seed);
  const NodeId remote = home == 0 ? 1 : 0;
  while (sched.now() < kRunEnd) {
    const Timestamp begin_at = sched.now();
    PhaseStats& ps = state.phases[phase_of(begin_at)];
    const Key mine = protocol::PartitionMap::make_key(
        home, static_cast<std::uint32_t>(rng.uniform(kKeysPerNode)));
    const Key theirs = protocol::PartitionMap::make_key(
        remote, static_cast<std::uint32_t>(rng.uniform(kKeysPerNode)));

    const TxId tx = coord.begin();
    auto outcome = coord.outcome_future(tx);
    auto r1 = co_await coord.read(tx, mine);
    if (!r1.aborted) {
      auto r2 = co_await coord.read(tx, theirs);
      if (!r2.aborted) {
        coord.write(tx, mine, std::to_string(std::stoull(r1.value) + 1));
        coord.commit(tx);
      }
    }
    const auto res = co_await outcome;
    if (res.outcome == TxOutcome::Committed) {
      ++ps.committed;
      ps.latencies.push_back(sched.now() - begin_at);
    } else {
      ++ps.aborted;
    }
  }
  state.stopped = true;
}

Timestamp percentile(std::vector<Timestamp>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

std::uint64_t counter(const obs::Registry& reg, const char* name) {
  const obs::Counter* c = reg.find_counter(name);
  return c != nullptr ? c->value() : 0;
}

}  // namespace

int main() {
  protocol::Cluster::Config cfg;
  cfg.num_nodes = 2;  // one node per region: region 0 and region 1
  cfg.replication_factor = 2;
  cfg.topology = net::Topology::symmetric(2, msec(100));
  cfg.protocol = protocol::ProtocolConfig::str();
  cfg.protocol.recovery.enabled = true;
  cfg.faults.add_partition(0, 1, kPartitionStart, kPartitionEnd);
  protocol::Cluster cluster(cfg);

  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (std::uint32_t k = 0; k < kKeysPerNode; ++k) {
      cluster.load(protocol::PartitionMap::make_key(n, k), "0");
    }
  }
  cluster.run_for(msec(10));

  std::printf("two regions, rtt 100ms; partition %.0fs..%.0fs of a %.0fs run\n",
              kPartitionStart / 1e6, kPartitionEnd / 1e6, kRunEnd / 1e6);

  std::vector<std::unique_ptr<ClientState>> clients;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (int c = 0; c < 4; ++c) {
      clients.push_back(std::make_unique<ClientState>());
      client_loop(cluster, n, 1000 + n * 10 + c, *clients.back());
    }
  }

  // Snapshot the recovery counters at each phase boundary so the table can
  // show per-phase deltas.
  std::uint64_t retries_at[kNumPhases + 1] = {};
  std::uint64_t timeouts_at[kNumPhases + 1] = {};
  auto snapshot = [&](int slot) {
    const obs::Registry reg = cluster.merged_obs();
    retries_at[slot] = counter(reg, "rpc.retries");
    timeouts_at[slot] = counter(reg, "rpc.timeouts");
  };
  cluster.run_for(kPartitionStart - msec(10));
  snapshot(1);
  cluster.run_for(kPartitionEnd - kPartitionStart);
  snapshot(2);
  cluster.run_for(kRunEnd - kPartitionEnd);
  snapshot(3);
  cluster.run_for(sec(10));  // drain: let retries and orphan probes settle

  for (const auto& c : clients) {
    if (!c->stopped) {
      std::printf("a client never finished -- recovery failed\n");
      return 1;
    }
  }

  PhaseStats total[kNumPhases];
  for (const auto& c : clients) {
    for (int p = 0; p < kNumPhases; ++p) {
      total[p].committed += c->phases[p].committed;
      total[p].aborted += c->phases[p].aborted;
      total[p].latencies.insert(total[p].latencies.end(),
                                c->phases[p].latencies.begin(),
                                c->phases[p].latencies.end());
    }
  }

  std::printf("\n%-10s %9s %8s %10s %10s %8s %9s\n", "phase", "committed",
              "aborted", "p50(ms)", "p95(ms)", "retries", "timeouts");
  for (int p = 0; p < kNumPhases; ++p) {
    std::printf("%-10s %9llu %8llu %10.1f %10.1f %8llu %9llu\n",
                phase_name(p),
                static_cast<unsigned long long>(total[p].committed),
                static_cast<unsigned long long>(total[p].aborted),
                percentile(total[p].latencies, 0.50) / 1e3,
                percentile(total[p].latencies, 0.95) / 1e3,
                static_cast<unsigned long long>(retries_at[p + 1] -
                                                retries_at[p]),
                static_cast<unsigned long long>(timeouts_at[p + 1] -
                                                timeouts_at[p]));
  }

  const auto leak = cluster.quiesce_report();
  std::printf("\nquiesce: live=%zu parked=%zu locks=%zu orphans=%zu -> %s\n",
              leak.live_txns, leak.parked_reads, leak.uncommitted_txns,
              leak.orphans, leak.clean() ? "clean" : "LEAKED");
  if (!leak.clean()) return 1;
  if (total[kBefore].committed == 0 || total[kHealed].committed == 0) {
    std::printf("expected commits both before and after the partition\n");
    return 1;
  }
  return 0;
}
