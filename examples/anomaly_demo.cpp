// Figure 1 anomaly demonstration: the concurrency anomalies that naive
// speculative reads would cause, and why SPSI prevents them.
//
// The demo maintains the two invariants from the paper's Figure 1:
//   (a) B == C      — atomicity: T1 writes both; observing only one of the
//                     two writes crashes the application (division by zero).
//   (b) A == 2 * B  — isolation: every writer preserves the ratio;
//                     observing a mix of two conflicting writers hangs the
//                     application in an infinite loop.
// It runs thousands of speculative observations under heavy write traffic
// and reports that no observation ever broke an invariant.

#include <cstdio>
#include <memory>
#include <vector>

#include "protocol/cluster.hpp"
#include "sim/coro.hpp"

using namespace str;  // NOLINT

namespace {

struct Stats {
  std::uint64_t checks = 0;
  std::uint64_t speculative = 0;
  std::uint64_t violations = 0;
};

sim::Fiber write_equal_pair(protocol::Cluster& cluster, NodeId node, Key b,
                            Key c, int gen) {
  auto& coord = cluster.node(node).coordinator();
  const TxId tx = coord.begin();
  auto outcome = coord.outcome_future(tx);
  coord.write(tx, b, std::to_string(gen));
  coord.write(tx, c, std::to_string(gen));
  coord.commit(tx);
  co_await outcome;
}

sim::Fiber write_ratio_pair(protocol::Cluster& cluster, NodeId node, Key a,
                            Key b) {
  auto& coord = cluster.node(node).coordinator();
  const TxId tx = coord.begin();
  auto outcome = coord.outcome_future(tx);
  auto rb = co_await coord.read(tx, b);
  if (!rb.aborted) {
    const std::uint64_t v = rb.value.empty() ? 0 : std::stoull(rb.value);
    coord.write(tx, b, std::to_string(v + 1));
    coord.write(tx, a, std::to_string(2 * (v + 1)));
    coord.commit(tx);
  }
  co_await outcome;
}

sim::Fiber check_invariants(protocol::Cluster& cluster, NodeId node, Key b,
                            Key c, Key a2, Key b2, int rounds, Stats& stats) {
  auto& coord = cluster.node(node).coordinator();
  for (int i = 0; i < rounds; ++i) {
    const TxId tx = coord.begin();
    auto outcome = coord.outcome_future(tx);
    auto rb = co_await coord.read(tx, b);
    if (!rb.aborted) {
      auto rc = co_await coord.read(tx, c);
      if (!rc.aborted) {
        auto ra2 = co_await coord.read(tx, a2);
        if (!ra2.aborted) {
          auto rb2 = co_await coord.read(tx, b2);
          if (!rb2.aborted) {
            ++stats.checks;
            if (rb.speculative || rc.speculative || ra2.speculative ||
                rb2.speculative) {
              ++stats.speculative;
            }
            if (rb.value != rc.value) ++stats.violations;  // invariant (a)
            const std::uint64_t av =
                ra2.value.empty() ? 0 : std::stoull(ra2.value);
            const std::uint64_t bv =
                rb2.value.empty() ? 0 : std::stoull(rb2.value);
            if (av != 2 * bv) ++stats.violations;  // invariant (b)
            coord.commit(tx);
          }
        }
      }
    }
    co_await outcome;
    co_await sim::sleep_for(cluster.scheduler(), msec(2));
  }
}

}  // namespace

int main() {
  protocol::Cluster::Config cfg;
  cfg.num_nodes = 3;
  cfg.replication_factor = 2;
  cfg.topology = net::Topology::symmetric(3, msec(80));
  cfg.protocol = protocol::ProtocolConfig::str();
  protocol::Cluster cluster(cfg);

  const Key b = protocol::PartitionMap::make_key(0, 1);
  const Key c = protocol::PartitionMap::make_key(0, 2);
  const Key a2 = protocol::PartitionMap::make_key(0, 3);
  const Key b2 = protocol::PartitionMap::make_key(0, 4);
  cluster.load(b, "0");
  cluster.load(c, "0");
  cluster.load(a2, "0");
  cluster.load(b2, "0");
  cluster.run_for(msec(10));

  Stats stats;
  check_invariants(cluster, 0, b, c, a2, b2, 800, stats);
  for (int g = 1; g <= 200; ++g) {
    write_equal_pair(cluster, 0, b, c, g);
    write_ratio_pair(cluster, 0, a2, b2);
    cluster.run_for(msec(9));
  }
  cluster.run_for(sec(5));

  std::printf("invariant checks:              %llu\n",
              static_cast<unsigned long long>(stats.checks));
  std::printf("  involving speculative reads: %llu\n",
              static_cast<unsigned long long>(stats.speculative));
  std::printf("  invariant violations:        %llu\n",
              static_cast<unsigned long long>(stats.violations));
  std::printf("\n%s\n",
              stats.violations == 0
                  ? "SPSI prevented every Figure-1 anomaly."
                  : "ANOMALY OBSERVED — this should never happen!");
  return stats.violations == 0 ? 0 : 1;
}
