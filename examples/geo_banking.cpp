// Geo-replicated banking: accounts sharded across nine EC2-like regions,
// concurrent transfers between them, and an invariant audit (total balance
// is conserved) — a realistic ACID workload on top of the STR public API.
//
// Shows: partition-aware key design, transfer transactions with remote
// writes, retry-on-abort client logic, and that speculation never breaks
// the conservation invariant.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "protocol/cluster.hpp"
#include "sim/coro.hpp"

using namespace str;  // NOLINT

namespace {

constexpr std::uint32_t kAccountsPerNode = 100;
constexpr std::uint64_t kInitialBalance = 1000;

Key account_key(NodeId node, std::uint32_t acct) {
  return protocol::PartitionMap::make_key(node, acct);
}

struct TransferStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  bool done = false;
};

/// Move `amount` between two accounts, retrying until commit.
sim::Fiber transfer_loop(protocol::Cluster& cluster, NodeId home,
                         std::uint32_t rounds, std::uint64_t seed,
                         TransferStats& stats) {
  auto& coord = cluster.node(home).coordinator();
  Rng rng(seed);
  for (std::uint32_t i = 0; i < rounds; ++i) {
    const Key from = account_key(home, static_cast<std::uint32_t>(
                                           rng.uniform(kAccountsPerNode)));
    const NodeId to_node =
        static_cast<NodeId>(rng.uniform(cluster.num_nodes()));
    const Key to = account_key(to_node, static_cast<std::uint32_t>(
                                            rng.uniform(kAccountsPerNode)));
    if (from == to) continue;
    const std::uint64_t amount = 1 + rng.uniform(50);

    for (;;) {  // retry until the transfer commits
      const TxId tx = coord.begin();
      auto outcome = coord.outcome_future(tx);
      auto rf = co_await coord.read(tx, from);
      if (!rf.aborted) {
        auto rt = co_await coord.read(tx, to);
        if (!rt.aborted) {
          const std::uint64_t bf = std::stoull(rf.value);
          const std::uint64_t bt = std::stoull(rt.value);
          if (bf < amount) {  // insufficient funds: clean rollback
            coord.user_abort(tx);
            co_await outcome;
            break;
          }
          coord.write(tx, from, std::to_string(bf - amount));
          coord.write(tx, to, std::to_string(bt + amount));
          coord.commit(tx);
        }
      }
      const auto res = co_await outcome;
      if (res.outcome == TxOutcome::Committed) {
        ++stats.committed;
        break;
      }
      ++stats.aborted;
    }
  }
  stats.done = true;
}

/// Audit: a read-only transaction summing one node's accounts.
sim::Fiber audit_node(protocol::Cluster& cluster, NodeId node,
                      std::uint64_t& total, bool& done) {
  auto& coord = cluster.node(node).coordinator();
  for (;;) {
    const TxId tx = coord.begin();
    auto outcome = coord.outcome_future(tx);
    std::uint64_t sum = 0;
    bool ok = true;
    for (std::uint32_t a = 0; a < kAccountsPerNode && ok; ++a) {
      auto r = co_await coord.read(tx, account_key(node, a));
      if (r.aborted) {
        ok = false;
        break;
      }
      sum += std::stoull(r.value);
    }
    if (ok) {
      coord.commit(tx);
      const auto res = co_await outcome;
      if (res.outcome == TxOutcome::Committed) {
        total = sum;
        done = true;
        co_return;
      }
    } else {
      co_await outcome;
    }
  }
}

}  // namespace

int main() {
  protocol::Cluster::Config cfg;
  cfg.num_nodes = 9;
  cfg.replication_factor = 6;
  cfg.topology = net::Topology::ec2_nine_regions();
  cfg.protocol = protocol::ProtocolConfig::str();
  protocol::Cluster cluster(cfg);

  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (std::uint32_t a = 0; a < kAccountsPerNode; ++a) {
      cluster.load(account_key(n, a), std::to_string(kInitialBalance));
    }
  }
  const std::uint64_t expected_total =
      std::uint64_t{cluster.num_nodes()} * kAccountsPerNode * kInitialBalance;
  cluster.run_for(msec(10));

  std::printf("launching transfers across 9 regions...\n");
  std::vector<std::unique_ptr<TransferStats>> stats;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (int c = 0; c < 3; ++c) {
      stats.push_back(std::make_unique<TransferStats>());
      transfer_loop(cluster, n, 40, n * 100 + c, *stats.back());
    }
  }
  cluster.run_for(sec(120));

  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  for (const auto& s : stats) {
    committed += s->committed;
    aborted += s->aborted;
  }
  std::printf("transfers committed: %llu, attempts aborted+retried: %llu\n",
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(aborted));

  std::printf("auditing total balance...\n");
  struct AuditSlot {
    std::uint64_t total = 0;
    bool done = false;
  };
  std::vector<AuditSlot> slots(cluster.num_nodes());
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    audit_node(cluster, n, slots[n].total, slots[n].done);
  }
  cluster.run_for(sec(30));
  std::uint64_t grand_total = 0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (!slots[n].done) {
      std::printf("audit of node %u did not finish!\n", n);
      return 1;
    }
    grand_total += slots[n].total;
  }
  std::printf("grand total: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(grand_total),
              static_cast<unsigned long long>(expected_total),
              grand_total == expected_total ? "CONSERVED" : "VIOLATED");
  return grand_total == expected_total ? 0 : 1;
}
