// Self-tuning demo (§5.5): run the speculation-hostile Synth-B workload at
// high load and watch the feedback controller measure throughput with
// speculative reads on and off, then lock in the better configuration.

#include <cstdio>
#include <memory>

#include "protocol/cluster.hpp"
#include "tuning/self_tuner.hpp"
#include "workload/client.hpp"
#include "workload/synthetic.hpp"

using namespace str;  // NOLINT

int main() {
  protocol::Cluster::Config cfg;
  cfg.num_nodes = 9;
  cfg.replication_factor = 6;
  cfg.topology = net::Topology::ec2_nine_regions();
  cfg.protocol = protocol::ProtocolConfig::str();
  protocol::Cluster cluster(cfg);

  workload::SyntheticConfig wcfg = workload::SyntheticConfig::synth_b();
  workload::SyntheticWorkload wl(cluster, wcfg);
  wl.load(cluster);

  auto pool = workload::ClientPool::with_total(cluster, wl, 240);
  pool.start_all();

  tuning::SelfTunerConfig tcfg;
  tcfg.interval = sec(8);
  tcfg.settle = sec(2);
  tcfg.initial_delay = sec(2);
  tuning::SelfTuner tuner(cluster, tcfg);
  tuner.start();

  std::printf("Synth-B, 240 clients, 9 regions. Tuner trial running...\n");
  std::uint64_t prev = 0;
  for (int s = 1; s <= 26; ++s) {
    cluster.run_for(sec(1));
    const auto total = cluster.metrics().commit_meter().total();
    std::printf("t=%2ds  %4llu commits/s  speculation=%s%s\n", s,
                static_cast<unsigned long long>(total - prev),
                cluster.flags().speculation_enabled ? "on " : "off",
                tuner.decided() && s == 0 ? "" : "");
    prev = total;
  }

  std::printf("\ntuner decision: speculation %s (after %u trial%s)\n",
              tuner.speculation_chosen() ? "ENABLED" : "DISABLED",
              tuner.trials_run(), tuner.trials_run() == 1 ? "" : "s");
  pool.request_stop_all();
  cluster.run_for(sec(3));
  return 0;
}
