// Quickstart: build a geo-replicated STR cluster, run a few transactions,
// and observe speculation at work.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
//
// The example stands up three nodes in three regions (100ms RTT), writes a
// key from one transaction, and shows a second transaction speculatively
// reading the pre-committed value long before global certification
// finishes — then both final-commit in order.

#include <cstdio>

#include "protocol/cluster.hpp"
#include "sim/coro.hpp"

using namespace str;  // NOLINT

namespace {

// Coroutine style: transaction bodies take everything they use as
// parameters (never lambda captures — the frame outlives the statement).
sim::Fiber writer_txn(protocol::Cluster& cluster, protocol::Coordinator& coord,
                      Key key) {
  const TxId tx = coord.begin();
  auto outcome = coord.outcome_future(tx);
  std::printf("[%7.1fms] writer: begin (snapshot %llu)\n",
              cluster.now() / 1000.0,
              static_cast<unsigned long long>(coord.snapshot_of(tx)));
  coord.write(tx, key, "speculative-hello");
  coord.commit(tx);
  const txn::TxFinalResult r = co_await outcome;
  std::printf("[%7.1fms] writer: %s (commit ts %llu)\n",
              cluster.now() / 1000.0,
              r.outcome == TxOutcome::Committed ? "final committed" : "aborted",
              static_cast<unsigned long long>(r.commit_ts));
}

sim::Fiber reader_txn(protocol::Cluster& cluster, protocol::Coordinator& coord,
                      Key key) {
  const TxId tx = coord.begin();
  auto outcome = coord.outcome_future(tx);
  auto r = co_await coord.read(tx, key);
  std::printf("[%7.1fms] reader: observed \"%s\"%s\n", cluster.now() / 1000.0,
              r.value.c_str(),
              r.speculative ? "  <-- speculative (writer not yet final!)" : "");
  coord.commit(tx);
  const txn::TxFinalResult res = co_await outcome;
  std::printf("[%7.1fms] reader: %s\n", cluster.now() / 1000.0,
              res.outcome == TxOutcome::Committed ? "final committed"
                                                  : "aborted");
}

}  // namespace

int main() {
  protocol::Cluster::Config cfg;
  cfg.num_nodes = 3;
  cfg.replication_factor = 2;
  cfg.topology = net::Topology::symmetric(3, msec(100));
  cfg.protocol = protocol::ProtocolConfig::str();
  protocol::Cluster cluster(cfg);

  const Key key = protocol::PartitionMap::make_key(0, 42);
  cluster.load(key, "initial");
  cluster.run_for(msec(5));

  auto& coord = cluster.node(0).coordinator();
  writer_txn(cluster, coord, key);
  cluster.run_for(msec(2));  // writer is local-committed, certifying over WAN
  reader_txn(cluster, coord, key);

  cluster.run_for(sec(1));
  std::printf("\nspeculative reads served: %llu\n",
              static_cast<unsigned long long>(
                  cluster.metrics().speculative_reads()));
  std::printf("WAN messages: %llu\n",
              static_cast<unsigned long long>(
                  cluster.network().stats().wan_messages));
  return 0;
}
