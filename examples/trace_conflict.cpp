// Trace a two-node write-write conflict and dump it as a Chrome trace.
//
//   cmake -B build && cmake --build build -j
//   ./build/examples/trace_conflict trace.json
//
// Two transactions on different nodes update the same key concurrently.
// One wins local certification at the master; the other is refused during
// global certification and aborts. A third transaction speculatively reads
// the winner's local-committed value and commits only after the writer's
// final outcome (the SPSI-4 dependency wait).
//
// The produced JSON loads in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: one track per node, one async span per transaction,
// with the lifecycle events (read_ready, prepare_sent, dep_wait, ...)
// attached to the spans. See docs/OBSERVABILITY.md for the event taxonomy.

#include <cstdio>

#include "obs/export.hpp"
#include "protocol/cluster.hpp"
#include "sim/coro.hpp"

using namespace str;  // NOLINT

namespace {

sim::Fiber update_txn(protocol::Cluster& cluster, protocol::Coordinator& coord,
                      Key key, Value value, const char* who) {
  const TxId tx = coord.begin();
  auto outcome = coord.outcome_future(tx);
  auto r = co_await coord.read(tx, key);
  coord.write(tx, key, std::move(value));
  coord.commit(tx);
  const txn::TxFinalResult res = co_await outcome;
  std::printf("[%7.1fms] %s: %s\n", cluster.now() / 1000.0, who,
              res.outcome == TxOutcome::Committed
                  ? "committed"
                  : to_string(res.abort_reason));
}

sim::Fiber spec_reader_txn(protocol::Cluster& cluster,
                           protocol::Coordinator& coord, Key key) {
  const TxId tx = coord.begin();
  auto outcome = coord.outcome_future(tx);
  auto r = co_await coord.read(tx, key);
  std::printf("[%7.1fms] reader: observed \"%s\"%s\n", cluster.now() / 1000.0,
              r.value.c_str(), r.speculative ? " (speculative)" : "");
  coord.commit(tx);
  const txn::TxFinalResult res = co_await outcome;
  std::printf("[%7.1fms] reader: %s\n", cluster.now() / 1000.0,
              res.outcome == TxOutcome::Committed
                  ? "committed"
                  : to_string(res.abort_reason));
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "trace_conflict.json";

  protocol::Cluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.replication_factor = 2;
  cfg.topology = net::Topology::symmetric(2, msec(100));
  cfg.protocol = protocol::ProtocolConfig::str();
  protocol::Cluster cluster(cfg);
  cluster.tracer().set_enabled(true);

  const Key key = protocol::PartitionMap::make_key(0, 7);
  cluster.load(key, "initial");
  cluster.run_for(msec(5));

  // Node 0 (the master of `key`) and node 1 race on the same key.
  update_txn(cluster, cluster.node(0).coordinator(), key, "from-node-0",
             "node 0 writer");
  update_txn(cluster, cluster.node(1).coordinator(), key, "from-node-1",
             "node 1 writer");
  cluster.run_for(msec(2));
  // A local reader speculates on node 0's local-committed value.
  spec_reader_txn(cluster, cluster.node(0).coordinator(), key);

  cluster.run_for(sec(2));

  const std::string json =
      obs::chrome_trace_json(cluster.tracer(), cluster.num_nodes());
  if (!obs::write_file(out_path, json)) return 1;
  std::printf("\n%llu trace events -> %s (load in https://ui.perfetto.dev)\n",
              static_cast<unsigned long long>(cluster.tracer().emitted()),
              out_path);
  return 0;
}
