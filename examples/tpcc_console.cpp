// TPC-C console: runs the paper's TPC-C mix A on the nine-region cluster
// under STR and prints a per-transaction-type report (throughput, retries,
// latency percentiles) — the view a system operator would want.

#include <cstdio>
#include <memory>

#include "protocol/cluster.hpp"
#include "workload/client.hpp"
#include "workload/tpcc.hpp"

using namespace str;  // NOLINT

namespace {

const char* type_name(int type) {
  switch (static_cast<workload::TpccTxType>(type)) {
    case workload::TpccTxType::NewOrder: return "new-order";
    case workload::TpccTxType::Payment: return "payment";
    case workload::TpccTxType::OrderStatus: return "order-status";
  }
  return "?";
}

}  // namespace

int main() {
  protocol::Cluster::Config cfg;
  cfg.num_nodes = 9;
  cfg.replication_factor = 6;
  cfg.topology = net::Topology::ec2_nine_regions();
  cfg.protocol = protocol::ProtocolConfig::str();
  protocol::Cluster cluster(cfg);

  workload::TpccConfig wcfg = workload::TpccConfig::mix_a();
  wcfg.think_time_mean = sec(2);
  workload::TpccWorkload wl(cluster, wcfg);
  wl.load(cluster);

  auto pool = workload::ClientPool::with_total(cluster, wl, 1800);
  pool.enable_type_stats();
  pool.start_all();

  const Timestamp duration = sec(60);
  std::printf("TPC-C mix A (5/83/12), 1800 clients, 45 warehouses, "
              "9 regions, STR. Running %llus of virtual time...\n\n",
              static_cast<unsigned long long>(duration / 1'000'000));
  cluster.run_for(sec(5));
  cluster.metrics().set_measurement_start(cluster.now());
  cluster.run_for(duration);
  pool.request_stop_all();
  cluster.run_for(sec(5));

  const auto& m = cluster.metrics();
  std::printf("cluster: %.1f tps, abort rate %.1f%%, %llu speculative reads\n\n",
              static_cast<double>(m.commits()) /
                  (static_cast<double>(duration) / 1e6),
              m.abort_rate() * 100.0,
              static_cast<unsigned long long>(m.speculative_reads()));

  std::printf("%-14s %9s %9s %10s %10s %10s %10s\n", "type", "commits",
              "attempts", "retry/txn", "p50 (ms)", "p99 (ms)", "mean (ms)");
  for (const auto& [type, stats] : pool.type_stats()->all()) {
    const double retries =
        stats.commits == 0
            ? 0.0
            : static_cast<double>(stats.attempts) /
                  static_cast<double>(stats.commits + stats.failed);
    std::printf("%-14s %9llu %9llu %10.2f %10.1f %10.1f %10.1f\n",
                type_name(type),
                static_cast<unsigned long long>(stats.commits),
                static_cast<unsigned long long>(stats.attempts), retries,
                static_cast<double>(stats.latency.p50()) / 1000.0,
                static_cast<double>(stats.latency.p99()) / 1000.0,
                stats.latency.mean() / 1000.0);
  }
  return 0;
}
